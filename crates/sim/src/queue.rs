//! Time-ordered event queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ch_invariant;
use crate::time::SimTime;

/// A pending event: fire time, insertion sequence number, payload.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within an
        // instant, the first-scheduled) entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events.
///
/// Events scheduled for the same instant pop in the order they were pushed
/// (FIFO), which keeps simulations deterministic without requiring payloads
/// to be ordered.
///
/// ```
/// use ch_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5), "b");
/// q.push(SimTime::from_secs(5), "c");
/// q.push(SimTime::from_secs(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Fire time of the most recently popped event, for the monotonicity
    /// invariant: simulated time never runs backwards.
    last_popped: Option<SimTime>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: None,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            last_popped: None,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// Pop times are non-decreasing: an event scheduled before an instant
    /// that has already been popped (scheduling "into the past") is a
    /// simulation bug, caught here when invariant checks are compiled in.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        if let Some(last) = self.last_popped {
            ch_invariant!(
                entry.at >= last,
                "event time ran backwards: popped {:?} after {:?}",
                entry.at,
                last
            );
        }
        self.last_popped = Some(entry.at);
        Some((entry.at, entry.event))
    }

    /// The fire time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (the sequence counter keeps advancing so
    /// determinism is preserved across a clear). The monotonicity watermark
    /// resets too: a cleared queue may start a fresh timeline.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.last_popped = None;
    }

    /// Resets the queue to its freshly-constructed state while keeping the
    /// heap's allocation: pending events are discarded, the monotonicity
    /// watermark clears, **and the sequence counter rewinds to zero** — a
    /// reused queue is therefore indistinguishable from
    /// [`EventQueue::new`], push for push and pop for pop. This is the
    /// clear-not-reallocate API arenas (`RunScratch`-style job scratch,
    /// city shards) use to recycle a drained queue between runs.
    pub fn reset(&mut self) {
        self.clear();
        self.next_seq = 0;
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3u32);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100u32 {
            q.push(t, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "early");
        q.push(SimTime::from_secs(10), "late");
        assert_eq!(
            q.pop_until(SimTime::from_secs(5)),
            Some((SimTime::from_secs(1), "early"))
        );
        assert_eq!(q.pop_until(SimTime::from_secs(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_and_len() {
        let mut q: EventQueue<u8> = (0..10).map(|i| (SimTime::from_secs(i), i as u8)).collect();
        assert_eq!(q.len(), 10);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn scheduling_into_the_past_is_caught() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "now");
        assert!(q.pop().is_some());
        q.push(SimTime::from_secs(1), "stale");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.pop();
        }))
        .expect_err("popping an event older than the watermark must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("ch_invariant panics with a formatted string");
        assert!(msg.contains("ran backwards"), "{msg}");
    }

    #[test]
    fn clear_resets_the_monotonicity_watermark() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(9), "late");
        assert!(q.pop().is_some());
        q.clear();
        q.push(SimTime::from_secs(1), "fresh timeline");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "fresh timeline")));
    }

    #[test]
    fn reset_is_indistinguishable_from_fresh() {
        // Drive a queue through pushes, pops and a clear so every piece of
        // internal state (watermark, sequence counter) has moved, then
        // reset and replay the same schedule on it and on a fresh queue:
        // the pop sequences must match exactly (same FIFO tie order).
        let mut used = EventQueue::new();
        for i in 0..50u64 {
            used.push(SimTime::from_secs(i % 7), i);
        }
        while used.pop_until(SimTime::from_secs(3)).is_some() {}
        used.reset();

        let mut fresh = EventQueue::new();
        let t = SimTime::from_secs(2);
        for i in 0..20u64 {
            used.push(t, i);
            fresh.push(t, i);
        }
        loop {
            let (a, b) = (used.pop(), fresh.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn reset_retains_capacity() {
        let mut q = EventQueue::with_capacity(256);
        for i in 0..200u64 {
            q.push(SimTime::from_secs(i), i);
        }
        let before = q.capacity();
        assert!(before >= 256);
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), before, "reset must not shrink the arena");
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::new();
        assert!(!format!("{q:?}").is_empty());
    }

    proptest! {
        /// Popping must always yield a non-decreasing time sequence, and
        /// within equal times the original push order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated on tie");
                    }
                }
                last = Some((t, idx));
            }
        }

        /// The queue must return exactly the multiset it was given.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..1_000, 0..100)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime::from_micros(t), t);
            }
            let mut out: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            let mut expect = times.clone();
            out.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(out, expect);
        }
    }
}

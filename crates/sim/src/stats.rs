//! Summary statistics for replicated experiments.
//!
//! The paper reports single field runs; a simulator can do better. The
//! replication harness in `ch-scenarios` runs each deployment across many
//! seeds and summarizes the resulting samples with [`Summary`]: mean,
//! standard deviation, extrema, and a normal-approximation 95 % confidence
//! interval on the mean.

/// Summary statistics over a sample of `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Summarizes `samples`. Non-finite values are rejected.
    ///
    /// Returns `None` for an empty sample.
    ///
    /// # Panics
    ///
    /// Panics if any sample is non-finite.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "summary of non-finite samples"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (Bessel-corrected).
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        self.std_dev / (self.n as f64).sqrt()
    }

    /// Normal-approximation 95 % confidence interval on the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_err();
        (self.mean - half, self.mean + half)
    }

    /// `true` if `other`'s mean lies outside this summary's 95 % CI —
    /// the quick "clearly different" check used by the replication report.
    pub fn clearly_differs_from(&self, other: &Summary) -> bool {
        let (lo, hi) = self.ci95();
        other.mean < lo || other.mean > hi
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, range {:.4}–{:.4})",
            self.mean,
            self.std_err() * 1.96,
            self.n,
            self.min,
            self.max
        )
    }
}

/// The `q`-quantile (0–1, nearest-rank) of a sample.
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        assert_eq!(Summary::of(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.ci95(), (3.0, 3.0));
        assert_eq!(s.n(), 1);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Bessel-corrected variance of that classic sample is 32/7.
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        let (lo, hi) = s.ci95();
        assert!(lo < 5.0 && hi > 5.0);
    }

    #[test]
    fn clearly_differs() {
        let tight_low = Summary::of(&[1.0, 1.01, 0.99, 1.0, 1.0]).unwrap();
        let tight_high = Summary::of(&[2.0, 2.01, 1.99, 2.0, 2.0]).unwrap();
        assert!(tight_low.clearly_differs_from(&tight_high));
        let overlapping = Summary::of(&[0.9, 1.1, 1.0]).unwrap();
        assert!(!tight_low.clearly_differs_from(&overlapping));
    }

    #[test]
    fn quantiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.5), Some(50.0));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(100.0));
        assert_eq!(quantile(&xs, 0.95), Some(95.0));
    }

    #[test]
    fn display_nonempty() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        assert!(s.to_string().contains("n=2"));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rejected() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_quantile_rejected() {
        let _ = quantile(&[1.0], 1.5);
    }
}

//! Deterministic hash collections.
//!
//! `std`'s default `RandomState` seeds itself differently on every process
//! start, so `HashMap` iteration order — and therefore any simulation
//! decision derived from it — varies run to run. That breaks the
//! bit-for-bit reproducibility the benchmark harness depends on (`ch-lint`
//! rule R1 rejects default-hasher maps in determinism-critical crates).
//!
//! [`DetHashMap`] / [`DetHashSet`] swap in the Fx hash function
//! (Firefox's multiply-xor hash, as popularized by `rustc-hash`): fixed
//! seed, no per-process state, and faster than SipHash on the small keys
//! (MACs, SSIDs, u64 ids) the simulation uses. Iteration order is then a
//! pure function of the insertion history, which a seeded simulation
//! replays identically.

// This module is the sanctioned place that re-binds std's maps with an
// explicit deterministic hasher.
use std::collections::{HashMap, HashSet}; // ch-lint: allow(default-hasher)
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the deterministic Fx hasher.
pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the deterministic Fx hasher.
pub type DetHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// An empty [`DetHashMap`] (the alias cannot use `HashMap::new`, which is
/// only defined for the default hasher).
pub fn det_hash_map<K, V>() -> DetHashMap<K, V> {
    DetHashMap::default()
}

/// An empty [`DetHashMap`] with room for `capacity` entries.
pub fn det_hash_map_with_capacity<K, V>(capacity: usize) -> DetHashMap<K, V> {
    DetHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

/// An empty [`DetHashSet`].
pub fn det_hash_set<T>() -> DetHashSet<T> {
    DetHashSet::default()
}

/// An empty [`DetHashSet`] with room for `capacity` entries.
pub fn det_hash_set_with_capacity<T>(capacity: usize) -> DetHashSet<T> {
    DetHashSet::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-xor hash. Deterministic across processes and platforms
/// with 64-bit `usize`; not DoS-resistant, which is fine for simulation
/// state keyed by generated identifiers.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" ++ "" and "a" ++ "b" differ.
            self.add_to_hash(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_process_independent() {
        // A fixed key must hash identically on every call and every run —
        // the property RandomState deliberately breaks.
        let mut a = FxHasher::default();
        a.write(b"PCCW1x");
        let mut b = FxHasher::default();
        b.write(b"PCCW1x");
        assert_eq!(a.finish(), b.finish());
        assert_eq!(
            {
                let mut h = FxHasher::default();
                h.write_u64(0xdead_beef);
                h.finish()
            },
            {
                let mut h = FxHasher::default();
                h.write_u64(0xdead_beef);
                h.finish()
            }
        );
    }

    #[test]
    fn tail_bytes_and_length_distinguish_keys() {
        let digest = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(digest(b"ab"), digest(b"ba"));
        assert_ne!(digest(b"a"), digest(b"a\0"));
        assert_ne!(digest(b"1234567890"), digest(b"123456789"));
    }

    #[test]
    fn map_iteration_order_is_reproducible() {
        let build = || {
            let mut map = det_hash_map_with_capacity(64);
            for i in 0..64u64 {
                map.insert(i.wrapping_mul(0x9e37_79b9), i);
            }
            map.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn set_constructors_work() {
        let mut set = det_hash_set();
        assert!(set.insert("a"));
        assert!(!set.insert("a"));
        let set2: DetHashSet<u8> = det_hash_set_with_capacity(16);
        assert!(set2.capacity() >= 16);
    }
}

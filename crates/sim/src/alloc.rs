//! Thread-local allocation counting, for the zero-alloc hot-path gates.
//!
//! The perf story of the probe pipeline ("steady-state probe handling does
//! not touch the heap") is asserted, not assumed: `perfbench` and the
//! alloc-regression tests install [`CountingAlloc`] as their binary's global
//! allocator and read [`allocation_count`] around the code under test.
//!
//! The counter is thread-local, so a measurement only sees the measuring
//! thread's allocations, and purely monotonic — callers diff two readings
//! via [`allocations_since`]. Deallocations are not tracked; the gates care
//! about *allocation pressure*, not leaks.
//!
//! ```no_run
//! // In a bench or test binary (one global allocator per binary):
//! #[global_allocator]
//! static ALLOC: ch_sim::alloc::CountingAlloc = ch_sim::alloc::CountingAlloc;
//!
//! let before = ch_sim::alloc::allocation_count();
//! // ... hot path under test ...
//! assert_eq!(ch_sim::alloc::allocations_since(before), 0);
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// A `#[global_allocator]` that delegates to [`System`] and counts every
/// allocation (including reallocations) on a thread-local counter.
///
/// Installing it costs one thread-local increment per allocation — cheap
/// enough that the perfbench numbers measured under it transfer to the
/// uncounted production binaries.
pub struct CountingAlloc;

fn bump() {
    // `try_with` instead of `with`: the allocator can be reached during
    // thread teardown after the TLS slot is destroyed, where `with` would
    // abort. Uncounted teardown allocations are fine — no measurement is
    // live on a dying thread.
    let _ = ALLOCATIONS.try_with(|count| count.set(count.get().wrapping_add(1)));
}

// The one unsafe block in the workspace: `GlobalAlloc` is an unsafe trait
// by construction. The impl adds no unsafety of its own — every method
// delegates straight to `System` with the caller's own contract.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// The calling thread's monotonic allocation count.
///
/// Always reads zero unless the binary installed [`CountingAlloc`] as its
/// `#[global_allocator]`.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// Allocations on this thread since an earlier [`allocation_count`] reading.
pub fn allocations_since(start: u64) -> u64 {
    allocation_count().wrapping_sub(start)
}

/// Runs `f` and returns `(allocations during f, f's result)`.
pub fn count_allocations<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = allocation_count();
    let value = f();
    (allocations_since(before), value)
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests run under the default system allocator (no
    // `#[global_allocator]` in the lib test binary), so the counter stays
    // flat; the end-to-end counting behaviour is exercised by the dedicated
    // alloc-gate binaries in ch-attack and ch-bench.
    #[test]
    fn counter_is_monotonic_and_diffable() {
        let start = allocation_count();
        let v: Vec<u8> = Vec::with_capacity(32);
        drop(v);
        assert!(allocation_count() >= start);
        let (n, sum) = count_allocations(|| (0u64..10).sum::<u64>());
        assert_eq!(sum, 45);
        assert_eq!(n, 0, "no counting allocator installed in lib tests");
    }

    #[test]
    fn bump_counts_on_this_thread() {
        let before = allocation_count();
        bump();
        bump();
        assert_eq!(allocations_since(before), 2);
    }
}

//! Shared-channel radio medium.
//!
//! The real City-Hunter prototype is a Raspberry Pi AP at 100 mW; the only
//! PHY properties the attack actually depends on are
//!
//! 1. *airtime* — a probe response occupies the channel for ~0.25 ms, which
//!    combined with the client's ~10 ms listen window caps a scan at ~40
//!    received responses (§III-A), and
//! 2. *range* — whether a given phone is close enough to exchange frames at
//!    all, with delivery degrading near the edge of coverage.
//!
//! [`RadioMedium`] models both: it serializes transmissions on one channel
//! (FIFO airtime accounting) and applies a distance-based [`LossModel`] gate
//! per frame.

use crate::fault::GilbertElliott;
use crate::space::Position;
use crate::time::{SimDuration, SimTime};
use crate::SimRng;

/// Distance-based frame-delivery model.
///
/// Inside `full_range` frames deliver with `base_delivery`; between
/// `full_range` and `max_range` the probability falls off linearly to zero;
/// beyond `max_range` nothing is delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct LossModel {
    full_range_m: f64,
    max_range_m: f64,
    base_delivery: f64,
}

impl LossModel {
    /// Creates a loss model.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are not `0 < full_range <= max_range`, or if
    /// `base_delivery` is outside `[0, 1]`.
    pub fn new(full_range_m: f64, max_range_m: f64, base_delivery: f64) -> Self {
        assert!(
            full_range_m > 0.0 && full_range_m <= max_range_m,
            "invalid ranges {full_range_m}..{max_range_m}"
        );
        assert!(
            (0.0..=1.0).contains(&base_delivery),
            "base_delivery {base_delivery} outside [0,1]"
        );
        LossModel {
            full_range_m,
            max_range_m,
            base_delivery,
        }
    }

    /// A model representative of a 100 mW AP in a cluttered indoor/urban
    /// setting: reliable to ~35 m, fading out by ~60 m.
    pub fn urban_100mw() -> Self {
        LossModel::new(35.0, 60.0, 0.97)
    }

    /// An idealized lossless model with the given hard range; useful in
    /// unit tests.
    pub fn ideal(range_m: f64) -> Self {
        LossModel::new(range_m, range_m, 1.0)
    }

    /// The distance beyond which no frame is ever delivered.
    pub fn max_range_m(&self) -> f64 {
        self.max_range_m
    }

    /// Probability that a single frame crosses `distance_m`.
    pub fn delivery_prob(&self, distance_m: f64) -> f64 {
        if distance_m <= self.full_range_m {
            self.base_delivery
        } else if distance_m >= self.max_range_m {
            0.0
        } else {
            let span = self.max_range_m - self.full_range_m;
            let frac = 1.0 - (distance_m - self.full_range_m) / span;
            self.base_delivery * frac
        }
    }

    /// `true` if the two endpoints are within any possibility of contact.
    pub fn in_range(&self, a: Position, b: Position) -> bool {
        a.distance_to(b) < self.max_range_m
    }
}

/// Outcome of attempting to deliver one frame across the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The frame arrived; the channel was busy until the contained instant.
    Delivered {
        /// When the receiver has the full frame.
        at: SimTime,
    },
    /// The frame was transmitted but lost (range/fading).
    Lost,
    /// The endpoints are out of range; nothing was transmitted.
    OutOfRange,
}

impl DeliveryOutcome {
    /// `true` if the frame arrived.
    pub fn is_delivered(&self) -> bool {
        matches!(self, DeliveryOutcome::Delivered { .. })
    }
}

/// A single shared 802.11 channel with FIFO airtime accounting.
///
/// ```
/// use ch_sim::{LossModel, Position, RadioMedium, SimDuration, SimTime};
///
/// let mut medium = RadioMedium::new(LossModel::ideal(50.0));
/// let tx = Position::ORIGIN;
/// let rx = Position::new(10.0, 0.0);
/// let mut rng = ch_sim::SimRng::seed_from(1);
/// let airtime = SimDuration::from_micros(250);
/// let out = medium.transmit(SimTime::ZERO, tx, rx, airtime, &mut rng);
/// assert!(out.is_delivered());
/// ```
#[derive(Debug, Clone)]
pub struct RadioMedium {
    loss: LossModel,
    /// Optional Gilbert–Elliott burst-loss chain layered on top of the
    /// distance model (fault injection); `None` adds no loss and no
    /// RNG draws.
    burst: Option<GilbertElliott>,
    busy_until: SimTime,
    frames_sent: u64,
    frames_delivered: u64,
}

impl RadioMedium {
    /// Creates a medium with the given loss model and an idle channel.
    pub fn new(loss: LossModel) -> Self {
        RadioMedium {
            loss,
            burst: None,
            busy_until: SimTime::ZERO,
            frames_sent: 0,
            frames_delivered: 0,
        }
    }

    /// Creates a medium whose distance model is multiplied by a bursty
    /// Gilbert–Elliott channel: a frame is delivered only if it clears
    /// both the distance draw and the burst chain.
    pub fn with_burst_loss(loss: LossModel, burst: GilbertElliott) -> Self {
        RadioMedium {
            burst: Some(burst),
            ..RadioMedium::new(loss)
        }
    }

    /// The burst chain layered on the medium, if any.
    pub fn burst(&self) -> Option<&GilbertElliott> {
        self.burst.as_ref()
    }

    /// The loss model in force.
    pub fn loss_model(&self) -> &LossModel {
        &self.loss
    }

    /// The instant the channel next goes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total frames handed to the medium.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Total frames that reached their receiver.
    pub fn frames_delivered(&self) -> u64 {
        self.frames_delivered
    }

    /// Transmits one frame of the given `airtime` from `tx` to `rx`,
    /// starting no earlier than `now` and no earlier than the end of the
    /// frame currently occupying the channel.
    pub fn transmit(
        &mut self,
        now: SimTime,
        tx: Position,
        rx: Position,
        airtime: SimDuration,
        rng: &mut SimRng,
    ) -> DeliveryOutcome {
        let distance = tx.distance_to(rx);
        if distance >= self.loss.max_range_m {
            return DeliveryOutcome::OutOfRange;
        }
        let start = now.max(self.busy_until);
        let end = start + airtime;
        self.busy_until = end;
        self.frames_sent += 1;
        let clear = rng.chance(self.loss.delivery_prob(distance));
        // The burst chain advances once per transmitted frame even when
        // the distance draw already lost it — burst dwell is a property
        // of the channel, not of individual outcomes.
        let burst_drop = match &mut self.burst {
            Some(chain) => chain.step(rng),
            None => false,
        };
        if clear && !burst_drop {
            self.frames_delivered += 1;
            DeliveryOutcome::Delivered { at: end }
        } else {
            DeliveryOutcome::Lost
        }
    }

    /// Transmits a back-to-back burst of `count` frames and reports how many
    /// were delivered within `deadline` (the receiver's listen window).
    ///
    /// This is exactly the §III-A bottleneck: an attacker replying with its
    /// whole SSID database can only land the frames that fit in the window.
    #[allow(clippy::too_many_arguments)] // a radio burst genuinely has this arity
    pub fn transmit_burst(
        &mut self,
        now: SimTime,
        tx: Position,
        rx: Position,
        airtime_each: SimDuration,
        count: usize,
        deadline: SimTime,
        rng: &mut SimRng,
    ) -> BurstOutcome {
        let mut delivered = 0usize;
        let mut attempted = 0usize;
        for _ in 0..count {
            let projected_end = now.max(self.busy_until) + airtime_each;
            if projected_end > deadline {
                break;
            }
            attempted += 1;
            if self.transmit(now, tx, rx, airtime_each, rng).is_delivered() {
                delivered += 1;
            }
        }
        BurstOutcome {
            delivered,
            window_closed_at: self.busy_until.min(deadline),
            truncated: count - attempted,
        }
    }

    /// Resets the channel to idle, zeroes the counters, and returns any
    /// burst chain to its Good state (used between independent
    /// experiment runs sharing a medium value).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.frames_sent = 0;
        self.frames_delivered = 0;
        if let Some(chain) = &mut self.burst {
            chain.reset();
        }
    }
}

/// Result of [`RadioMedium::transmit_burst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstOutcome {
    /// Frames that reached the receiver within the window.
    pub delivered: usize,
    /// When the last in-window frame finished (or the deadline).
    pub window_closed_at: SimTime,
    /// Frames that did not fit in the window and were never sent.
    pub truncated: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(42)
    }

    #[test]
    fn delivery_prob_profile() {
        let m = LossModel::new(30.0, 60.0, 0.9);
        assert_eq!(m.delivery_prob(0.0), 0.9);
        assert_eq!(m.delivery_prob(30.0), 0.9);
        assert_eq!(m.delivery_prob(60.0), 0.0);
        assert_eq!(m.delivery_prob(100.0), 0.0);
        let mid = m.delivery_prob(45.0);
        assert!((mid - 0.45).abs() < 1e-12, "mid={mid}");
    }

    #[test]
    #[should_panic(expected = "invalid ranges")]
    fn bad_ranges_rejected() {
        let _ = LossModel::new(50.0, 10.0, 0.9);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_delivery_rejected() {
        let _ = LossModel::new(10.0, 20.0, 1.5);
    }

    #[test]
    fn out_of_range_sends_nothing() {
        let mut medium = RadioMedium::new(LossModel::ideal(20.0));
        let out = medium.transmit(
            SimTime::ZERO,
            Position::ORIGIN,
            Position::new(25.0, 0.0),
            SimDuration::from_micros(250),
            &mut rng(),
        );
        assert_eq!(out, DeliveryOutcome::OutOfRange);
        assert_eq!(medium.frames_sent(), 0);
        assert_eq!(medium.busy_until(), SimTime::ZERO);
    }

    #[test]
    fn airtime_serializes_transmissions() {
        let mut medium = RadioMedium::new(LossModel::ideal(50.0));
        let mut r = rng();
        let a = SimDuration::from_micros(250);
        let o1 = medium.transmit(
            SimTime::ZERO,
            Position::ORIGIN,
            Position::new(1.0, 0.0),
            a,
            &mut r,
        );
        let o2 = medium.transmit(
            SimTime::ZERO,
            Position::ORIGIN,
            Position::new(1.0, 0.0),
            a,
            &mut r,
        );
        match (o1, o2) {
            (DeliveryOutcome::Delivered { at: t1 }, DeliveryOutcome::Delivered { at: t2 }) => {
                assert_eq!(t1, SimTime::from_micros(250));
                assert_eq!(t2, SimTime::from_micros(500));
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
        assert_eq!(medium.frames_delivered(), 2);
    }

    #[test]
    fn burst_caps_at_window_budget() {
        // 10 ms window / 250 us per response => at most 40 land, the rest
        // are truncated — the §III-A arithmetic.
        let mut medium = RadioMedium::new(LossModel::ideal(50.0));
        let mut r = rng();
        let out = medium.transmit_burst(
            SimTime::ZERO,
            Position::ORIGIN,
            Position::new(5.0, 0.0),
            SimDuration::from_micros(250),
            500,
            SimTime::from_millis(10),
            &mut r,
        );
        assert_eq!(out.delivered, 40);
        assert_eq!(out.truncated, 460);
        assert_eq!(out.window_closed_at, SimTime::from_millis(10));
    }

    #[test]
    fn burst_smaller_than_budget_all_delivered() {
        let mut medium = RadioMedium::new(LossModel::ideal(50.0));
        let mut r = rng();
        let out = medium.transmit_burst(
            SimTime::ZERO,
            Position::ORIGIN,
            Position::new(5.0, 0.0),
            SimDuration::from_micros(250),
            10,
            SimTime::from_millis(10),
            &mut r,
        );
        assert_eq!(out.delivered, 10);
        assert_eq!(out.truncated, 0);
        assert_eq!(out.window_closed_at, SimTime::from_micros(2_500));
    }

    #[test]
    fn lossy_medium_loses_some_frames() {
        let mut medium = RadioMedium::new(LossModel::new(10.0, 40.0, 1.0));
        let mut r = rng();
        let mut delivered = 0;
        for _ in 0..1_000 {
            medium.reset();
            if medium
                .transmit(
                    SimTime::ZERO,
                    Position::ORIGIN,
                    Position::new(25.0, 0.0), // half-way through the fade zone
                    SimDuration::from_micros(250),
                    &mut r,
                )
                .is_delivered()
            {
                delivered += 1;
            }
        }
        assert!((380..620).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn burst_chain_loses_extra_frames() {
        // Same seed, same geometry: the bursty medium can only deliver a
        // subset of what the clean medium delivers.
        let deliver_count = |medium: &mut RadioMedium| {
            let mut r = rng();
            let mut delivered = 0;
            for _ in 0..2_000 {
                if medium
                    .transmit(
                        SimTime::ZERO,
                        Position::ORIGIN,
                        Position::new(5.0, 0.0),
                        SimDuration::from_micros(250),
                        &mut r,
                    )
                    .is_delivered()
                {
                    delivered += 1;
                }
            }
            delivered
        };
        let mut clean = RadioMedium::new(LossModel::ideal(50.0));
        let mut bursty = RadioMedium::with_burst_loss(
            LossModel::ideal(50.0),
            GilbertElliott::new(0.1, 0.2, 0.0, 0.95),
        );
        let clean_delivered = deliver_count(&mut clean);
        let bursty_delivered = deliver_count(&mut bursty);
        assert_eq!(clean_delivered, 2_000);
        assert!(
            bursty_delivered < clean_delivered * 9 / 10,
            "burst chain lost nothing: {bursty_delivered}/{clean_delivered}"
        );
    }

    #[test]
    fn reset_restores_burst_chain_to_good() {
        use crate::fault::ChannelState;
        // Force the chain into the Bad state, then check reset recovers
        // it alongside the counters — the property long fault sweeps
        // reusing one medium depend on.
        let mut medium = RadioMedium::with_burst_loss(
            LossModel::ideal(50.0),
            GilbertElliott::new(1.0, 0.0, 0.0, 1.0), // enters Bad and stays
        );
        let mut r = rng();
        let out = medium.transmit(
            SimTime::ZERO,
            Position::ORIGIN,
            Position::new(1.0, 0.0),
            SimDuration::from_micros(250),
            &mut r,
        );
        assert_eq!(out, DeliveryOutcome::Lost);
        assert_eq!(medium.burst().unwrap().state(), ChannelState::Bad);
        medium.reset();
        assert_eq!(medium.burst().unwrap().state(), ChannelState::Good);
        assert_eq!(medium.busy_until(), SimTime::ZERO);
        assert_eq!(medium.frames_sent(), 0);
        assert_eq!(medium.frames_delivered(), 0);
        // A reset medium behaves exactly like a fresh one.
        let fresh = RadioMedium::with_burst_loss(
            LossModel::ideal(50.0),
            GilbertElliott::new(1.0, 0.0, 0.0, 1.0),
        );
        assert_eq!(medium.burst(), fresh.burst());
    }

    #[test]
    fn reset_clears_state() {
        let mut medium = RadioMedium::new(LossModel::ideal(50.0));
        let mut r = rng();
        let _ = medium.transmit(
            SimTime::from_secs(1),
            Position::ORIGIN,
            Position::new(1.0, 0.0),
            SimDuration::from_micros(250),
            &mut r,
        );
        medium.reset();
        assert_eq!(medium.busy_until(), SimTime::ZERO);
        assert_eq!(medium.frames_sent(), 0);
        assert_eq!(medium.frames_delivered(), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The channel's busy horizon never moves backwards, and counters
        /// are consistent, for any transmission sequence.
        #[test]
        fn prop_busy_until_monotone(
            txs in proptest::collection::vec(
                (0u64..10_000, 0.0f64..80.0, 50u64..500),
                1..100,
            ),
        ) {
            let mut medium = RadioMedium::new(LossModel::new(30.0, 60.0, 0.9));
            let mut rng = SimRng::seed_from(99);
            let mut last_busy = SimTime::ZERO;
            for (at_us, distance, airtime_us) in txs {
                let out = medium.transmit(
                    SimTime::from_micros(at_us),
                    Position::ORIGIN,
                    Position::new(distance, 0.0),
                    SimDuration::from_micros(airtime_us),
                    &mut rng,
                );
                prop_assert!(medium.busy_until() >= last_busy);
                last_busy = medium.busy_until();
                if let DeliveryOutcome::Delivered { at } = out {
                    prop_assert!(at <= medium.busy_until());
                }
            }
            prop_assert!(medium.frames_delivered() <= medium.frames_sent());
        }

        /// A burst never delivers more than fits in the window, and
        /// delivered + truncated never exceeds the requested count.
        #[test]
        fn prop_burst_accounting(
            count in 0usize..200,
            window_ms in 1u64..40,
        ) {
            let mut medium = RadioMedium::new(LossModel::new(30.0, 60.0, 0.8));
            let mut rng = SimRng::seed_from(7);
            let airtime = SimDuration::from_micros(250);
            let deadline = SimTime::from_millis(window_ms);
            let out = medium.transmit_burst(
                SimTime::ZERO,
                Position::ORIGIN,
                Position::new(10.0, 0.0),
                airtime,
                count,
                deadline,
                &mut rng,
            );
            let fits = (deadline.since(SimTime::ZERO) / airtime) as usize;
            prop_assert!(out.delivered <= fits.min(count));
            prop_assert!(out.delivered + out.truncated <= count);
            prop_assert!(out.window_closed_at <= deadline);
        }
    }
}

//! Runtime invariant checking, compiled out of release benchmarks.
//!
//! The ARC-family caches and the City-Hunter reply buffers maintain size
//! invariants (|T1|+|T2| ≤ c, PB+FB ≤ reply budget, …) whose violation
//! would silently skew the reproduced hit rates rather than crash. The
//! [`ch_invariant!`] and [`debug_invariant!`] macros make those invariants
//! executable:
//!
//! * [`ch_invariant!`] is active when `debug_assertions` are on (so in
//!   `cargo test` and dev builds) **or** when the `debug-invariants`
//!   feature of `ch-sim` is enabled — letting a release build opt back in
//!   with `--features ch-sim/debug-invariants`. Otherwise the check
//!   compiles to a constant-false branch the optimizer removes.
//! * [`debug_invariant!`] is tied to `debug_assertions` only, for checks
//!   too hot even for an opt-in release run.
//!
//! Both report through [`violation`], which panics with a `file:line`
//! prefix in the same shape as `ch-lint` diagnostics.

/// `true` when [`ch_invariant!`] checks are compiled in.
#[must_use]
pub const fn checks_enabled() -> bool {
    cfg!(any(debug_assertions, feature = "debug-invariants"))
}

/// Reports an invariant violation. Panics; never returns.
///
/// # Panics
///
/// Always — that is its job.
#[cold]
#[track_caller]
pub fn violation(file: &str, line: u32, message: &str) -> ! {
    panic!("invariant violated at {file}:{line}: {message}");
}

/// Asserts a structural invariant; see the [module docs](self) for when
/// the check is compiled in.
///
/// ```
/// use ch_sim::ch_invariant;
/// let (t1, t2, cap) = (3usize, 4usize, 8usize);
/// ch_invariant!(t1 + t2 <= cap, "resident lists {}+{} exceed {}", t1, t2, cap);
/// ```
#[macro_export]
macro_rules! ch_invariant {
    ($cond:expr $(,)?) => {
        if $crate::invariant::checks_enabled() && !($cond) {
            $crate::invariant::violation(file!(), line!(), stringify!($cond));
        }
    };
    ($cond:expr, $($msg:tt)+) => {
        if $crate::invariant::checks_enabled() && !($cond) {
            $crate::invariant::violation(file!(), line!(), &format!($($msg)+));
        }
    };
}

/// Like [`ch_invariant!`] but only ever active under `debug_assertions`.
#[macro_export]
macro_rules! debug_invariant {
    ($cond:expr $(,)?) => {
        if cfg!(debug_assertions) && !($cond) {
            $crate::invariant::violation(file!(), line!(), stringify!($cond));
        }
    };
    ($cond:expr, $($msg:tt)+) => {
        if cfg!(debug_assertions) && !($cond) {
            $crate::invariant::violation(file!(), line!(), &format!($($msg)+));
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_invariants_are_silent() {
        ch_invariant!(1 + 1 == 2);
        ch_invariant!(true, "never printed {}", 0);
        debug_invariant!(!"".contains('x'));
    }

    #[test]
    fn failing_invariant_panics_with_location() {
        let err = std::panic::catch_unwind(|| {
            ch_invariant!(2 + 2 == 5, "arithmetic drifted: {}", 42);
        })
        .expect_err("must panic under debug_assertions");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a formatted string");
        assert!(msg.contains("invariant violated at"), "{msg}");
        assert!(msg.contains("invariant.rs:"), "{msg}");
        assert!(msg.contains("arithmetic drifted: 42"), "{msg}");
    }

    #[test]
    fn failing_debug_invariant_panics_with_condition_text() {
        let err = std::panic::catch_unwind(|| {
            debug_invariant!(1 > 2);
        })
        .expect_err("must panic under debug_assertions");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a formatted string");
        assert!(msg.contains("1 > 2"), "{msg}");
    }

    #[test]
    fn checks_enabled_in_tests() {
        // Tests build with debug_assertions, so the opt-in layer must be on.
        assert!(super::checks_enabled());
    }
}

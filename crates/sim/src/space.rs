//! Planar geometry in metres.
//!
//! Venue-scale layout (attacker placement, phone movement, radio range)
//! lives in a local Cartesian frame measured in metres; the city-scale
//! geography used by the WiGLE substrate has its own coordinate type in
//! `ch-geo` and converts into this frame when a venue is instantiated.

use std::fmt;

/// A point in the venue-local plane, in metres.
///
/// ```
/// use ch_sim::Position;
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// East-west coordinate in metres.
    pub x: f64,
    /// North-south coordinate in metres.
    pub y: f64,
}

impl Position {
    /// The origin of the local frame.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position from metric coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance_to(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// The point a fraction `t` of the way towards `other`
    /// (`t = 0` is `self`, `t = 1` is `other`; values outside `[0,1]`
    /// extrapolate).
    pub fn lerp(self, other: Position, t: f64) -> Position {
        Position {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Moves `step` metres towards `target`, stopping exactly at the target
    /// if it is closer than `step`.
    pub fn step_towards(self, target: Position, step: f64) -> Position {
        let d = self.distance_to(target);
        if d <= step || d == 0.0 {
            target
        } else {
            self.lerp(target, step / d)
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}m, {:.1}m)", self.x, self.y)
    }
}

/// An axis-aligned rectangle, used for venue footprints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum-x, minimum-y corner.
    pub min: Position,
    /// Maximum-x, maximum-y corner.
    pub max: Position,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    pub fn new(a: Position, b: Position) -> Self {
        Rect {
            min: Position::new(a.x.min(b.x), a.y.min(b.y)),
            max: Position::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A rectangle of the given size with its minimum corner at the origin.
    pub fn from_size(width: f64, height: f64) -> Self {
        Rect::new(Position::ORIGIN, Position::new(width.abs(), height.abs()))
    }

    /// Width in metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Geometric centre.
    pub fn center(&self) -> Position {
        Position::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Position) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the rectangle.
    pub fn clamp(&self, p: Position) -> Position {
        Position::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// A uniformly random point inside the rectangle.
    pub fn sample(&self, rng: &mut crate::SimRng) -> Position {
        Position::new(
            if self.width() > 0.0 {
                rng.range_f64(self.min.x, self.max.x)
            } else {
                self.min.x
            },
            if self.height() > 0.0 {
                rng.range_f64(self.min.y, self.max.y)
            } else {
                self.min.y
            },
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} – {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;
    use proptest::prelude::*;

    #[test]
    fn distance_symmetric() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(-3.0, 5.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Position::new(5.0, -5.0));
    }

    #[test]
    fn step_towards_stops_at_target() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(1.0, 0.0);
        assert_eq!(a.step_towards(b, 5.0), b);
        let mid = a.step_towards(b, 0.25);
        assert!((mid.x - 0.25).abs() < 1e-12);
        // Zero-distance move is a no-op even with a positive step.
        assert_eq!(b.step_towards(b, 1.0), b);
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(Position::new(5.0, -1.0), Position::new(-5.0, 1.0));
        assert_eq!(r.min, Position::new(-5.0, -1.0));
        assert_eq!(r.max, Position::new(5.0, 1.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 2.0);
        assert_eq!(r.center(), Position::new(0.0, 0.0));
    }

    #[test]
    fn contains_and_clamp() {
        let r = Rect::from_size(10.0, 4.0);
        assert!(r.contains(Position::new(0.0, 0.0)));
        assert!(r.contains(Position::new(10.0, 4.0)));
        assert!(!r.contains(Position::new(10.1, 2.0)));
        assert_eq!(r.clamp(Position::new(20.0, -3.0)), Position::new(10.0, 0.0));
    }

    #[test]
    fn sample_inside() {
        let r = Rect::from_size(60.0, 8.0);
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1_000 {
            assert!(r.contains(r.sample(&mut rng)));
        }
        // Degenerate rectangles sample their single line/point.
        let line = Rect::from_size(0.0, 5.0);
        let p = line.sample(&mut rng);
        assert_eq!(p.x, 0.0);
    }

    proptest! {
        #[test]
        fn prop_step_never_overshoots(
            ax in -100.0..100.0f64, ay in -100.0..100.0f64,
            bx in -100.0..100.0f64, by in -100.0..100.0f64,
            step in 0.0..50.0f64,
        ) {
            let a = Position::new(ax, ay);
            let b = Position::new(bx, by);
            let next = a.step_towards(b, step);
            let before = a.distance_to(b);
            let after = next.distance_to(b);
            prop_assert!(after <= before + 1e-9);
            prop_assert!(after <= (before - step).max(0.0) + 1e-9);
        }

        #[test]
        fn prop_clamp_idempotent(
            px in -1000.0..1000.0f64, py in -1000.0..1000.0f64,
        ) {
            let r = Rect::from_size(50.0, 20.0);
            let c = r.clamp(Position::new(px, py));
            prop_assert!(r.contains(c));
            prop_assert_eq!(r.clamp(c), c);
        }
    }
}

//! The phone itself: identity, probing, and join decisions.

use ch_wifi::mgmt::{ProbeRequest, ProbeResponse};
use ch_wifi::{MacAddr, Ssid};

use crate::os::{OsKind, ProbePolicy};
use crate::pnl::Pnl;
use crate::scanner::ScanConfig;

/// How the phone manages its radio MAC across scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacMode {
    /// One stable MAC for the phone's lifetime (2017-era behaviour).
    Stable,
    /// A fresh locally-administered MAC for every scan round — the
    /// randomization modern OSes adopted *after* the paper, which breaks
    /// any per-client bookkeeping keyed on MAC (failure injection).
    PerScan,
}

/// What a phone does with an offered network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinDecision {
    /// Auto-join: the SSID is an open PNL entry and the offer is open.
    Join,
    /// Ignore: unknown SSID, protected entry, or already connected.
    Ignore,
}

/// A simulated smartphone.
#[derive(Debug, Clone, PartialEq)]
pub struct Phone {
    /// Stable simulation identity.
    pub id: u32,
    /// Current radio MAC address (stable, or rotating per scan).
    pub mac: MacAddr,
    /// MAC management policy.
    pub mac_mode: MacMode,
    /// Operating system family.
    pub os: OsKind,
    /// Preferred Network List.
    pub pnl: Pnl,
    /// Scan cadence.
    pub scan: ScanConfig,
    /// Group (companions) this phone's owner arrived with.
    pub group_id: u32,
    /// `true` if the radio is on and probing (phones with Wi-Fi off are
    /// invisible to every attacker and never appear in the counts).
    pub wifi_active: bool,
    /// `true` if the phone is already associated to a legitimate local AP —
    /// such clients "barely send out probe request frames" (§V-B) until
    /// deauthenticated.
    pub connected_locally: bool,
    /// The SSID the phone is currently associated to, if any.
    connected_ssid: Option<Ssid>,
    /// Cursor into the PNL for legacy direct-probe cycling.
    direct_cursor: usize,
    /// Scan counter (drives per-scan MAC derivation).
    scan_counter: u64,
}

impl Phone {
    /// Creates a phone; see [`crate::popgen::PopulationBuilder`] for the
    /// population-level constructor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        mac: MacAddr,
        os: OsKind,
        pnl: Pnl,
        scan: ScanConfig,
        group_id: u32,
        wifi_active: bool,
        connected_locally: bool,
    ) -> Self {
        Phone {
            id,
            mac,
            mac_mode: MacMode::Stable,
            os,
            pnl,
            scan,
            group_id,
            wifi_active,
            connected_locally,
            connected_ssid: None,
            direct_cursor: 0,
            scan_counter: 0,
        }
    }

    /// Switches the phone to per-scan MAC randomization.
    pub fn with_per_scan_mac(mut self) -> Self {
        self.mac_mode = MacMode::PerScan;
        self
    }

    /// `true` if the phone will emit probes when its scan timer fires.
    pub fn is_probing(&self) -> bool {
        self.wifi_active && !self.connected_locally && self.connected_ssid.is_none()
    }

    /// `true` if the phone is associated (locally or to an attacker).
    pub fn is_connected(&self) -> bool {
        self.connected_locally || self.connected_ssid.is_some()
    }

    /// The SSID the phone associated to (after a successful lure).
    pub fn connected_ssid(&self) -> Option<&Ssid> {
        self.connected_ssid.as_ref()
    }

    /// The probe requests emitted in one scan round: a broadcast probe,
    /// plus (for legacy devices) direct probes for the next few PNL
    /// entries, cycling through the list round by round.
    pub fn probes_for_scan(&mut self) -> Vec<ProbeRequest> {
        let mut probes = Vec::new();
        self.probes_for_scan_into(&mut probes);
        probes
    }

    /// [`probes_for_scan`](Self::probes_for_scan) into a caller-owned
    /// buffer — the zero-alloc variant hot loops use with a reused scratch
    /// vec. Clears `out` first; emits exactly the probes (and advances
    /// exactly the state) the allocating wrapper would.
    pub fn probes_for_scan_into(&mut self, out: &mut Vec<ProbeRequest>) {
        out.clear();
        if !self.is_probing() {
            return;
        }
        self.scan_counter += 1;
        if self.mac_mode == MacMode::PerScan {
            // Derive a fresh locally-administered MAC for this round.
            self.mac = MacAddr::randomized_from(
                (self.id as u64) << 24 ^ self.scan_counter.wrapping_mul(0x9e37_79b9),
            );
        }
        out.push(ProbeRequest::broadcast(self.mac));
        if let ProbePolicy::Direct { entries_per_scan } = self.os.probe_policy() {
            let n = self.pnl.len();
            for k in 0..entries_per_scan.min(n) {
                let entry = &self.pnl.entries()[(self.direct_cursor + k) % n];
                // Arc refcount bump, not a heap allocation.
                out.push(ProbeRequest::direct(self.mac, entry.ssid.clone())); // ch-lint: allow(hot-path-alloc)
            }
            if n > 0 {
                self.direct_cursor = (self.direct_cursor + entries_per_scan) % n;
            }
        }
    }

    /// Evaluates one offered network (a probe response): join iff the offer
    /// is open and the SSID is remembered as open.
    pub fn evaluate_offer(&self, response: &ProbeResponse) -> JoinDecision {
        if self.is_connected() || !self.wifi_active {
            return JoinDecision::Ignore;
        }
        if response.capabilities.privacy {
            // A protected twin would demand credentials; no auto-join.
            return JoinDecision::Ignore;
        }
        if self.pnl.would_autojoin_open(&response.ssid) {
            JoinDecision::Join
        } else {
            JoinDecision::Ignore
        }
    }

    /// Completes an association (after the auth/assoc handshake succeeds).
    pub fn connect_to(&mut self, ssid: Ssid) {
        self.connected_ssid = Some(ssid);
    }

    /// Handles a deauthentication aimed at this phone (§V-B): the phone
    /// drops its association and will scan again.
    pub fn handle_deauth(&mut self) {
        self.connected_ssid = None;
        self.connected_locally = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pnl::{PnlEntry, PnlOrigin};
    use ch_wifi::mgmt::CapabilityInfo;
    use ch_wifi::Channel;

    fn ssid(s: &str) -> Ssid {
        Ssid::new(s).unwrap()
    }

    fn phone(os: OsKind, pnl: Pnl) -> Phone {
        Phone::new(
            1,
            MacAddr::from_index([0xac, 0x12, 0x34], 1),
            os,
            pnl,
            ScanConfig::default_2017(),
            0,
            true,
            false,
        )
    }

    fn lure(name: &str) -> ProbeResponse {
        ProbeResponse::open_lure(
            MacAddr::from_index([0, 0, 9], 9),
            MacAddr::from_index([0xac, 0x12, 0x34], 1),
            ssid(name),
            Channel::default(),
        )
    }

    #[test]
    fn modern_phone_sends_single_broadcast() {
        let pnl = Pnl::from_entries([PnlEntry::open(ssid("A"), PnlOrigin::Public)]);
        let mut p = phone(OsKind::ModernAndroid, pnl);
        let probes = p.probes_for_scan();
        assert_eq!(probes.len(), 1);
        assert!(probes[0].is_broadcast());
    }

    #[test]
    fn legacy_phone_cycles_direct_probes() {
        let pnl = Pnl::from_entries([
            PnlEntry::open(ssid("A"), PnlOrigin::Public),
            PnlEntry::open(ssid("B"), PnlOrigin::Public),
            PnlEntry::protected(ssid("C"), PnlOrigin::Home),
            PnlEntry::open(ssid("D"), PnlOrigin::Public),
        ]);
        let mut p = phone(OsKind::LegacyDirect, pnl);
        let round1 = p.probes_for_scan();
        assert_eq!(round1.len(), 4); // broadcast + 3 direct
        let names1: Vec<_> = round1[1..]
            .iter()
            .map(|pr| pr.ssid.as_str().to_owned())
            .collect();
        assert_eq!(names1, ["A", "B", "C"]);
        let round2 = p.probes_for_scan();
        let names2: Vec<_> = round2[1..]
            .iter()
            .map(|pr| pr.ssid.as_str().to_owned())
            .collect();
        // Cursor advanced by 3, wraps over the 4-entry list.
        assert_eq!(names2, ["D", "A", "B"]);
    }

    #[test]
    fn join_only_open_remembered_networks() {
        let pnl = Pnl::from_entries([
            PnlEntry::open(ssid("FreeCafe"), PnlOrigin::Public),
            PnlEntry::protected(ssid("HomeNet"), PnlOrigin::Home),
        ]);
        let p = phone(OsKind::ModernIos, pnl);
        assert_eq!(p.evaluate_offer(&lure("FreeCafe")), JoinDecision::Join);
        assert_eq!(p.evaluate_offer(&lure("HomeNet")), JoinDecision::Ignore);
        assert_eq!(p.evaluate_offer(&lure("Stranger")), JoinDecision::Ignore);
    }

    #[test]
    fn protected_twin_not_joined() {
        let pnl = Pnl::from_entries([PnlEntry::open(ssid("X"), PnlOrigin::Public)]);
        let p = phone(OsKind::ModernIos, pnl);
        let mut offer = lure("X");
        offer.capabilities = CapabilityInfo::protected_ap();
        assert_eq!(p.evaluate_offer(&offer), JoinDecision::Ignore);
    }

    #[test]
    fn connected_phone_neither_probes_nor_joins() {
        let pnl = Pnl::from_entries([PnlEntry::open(ssid("X"), PnlOrigin::Public)]);
        let mut p = phone(OsKind::ModernAndroid, pnl);
        p.connect_to(ssid("X"));
        assert!(p.is_connected());
        assert!(!p.is_probing());
        assert!(p.probes_for_scan().is_empty());
        assert_eq!(p.evaluate_offer(&lure("X")), JoinDecision::Ignore);
    }

    #[test]
    fn locally_connected_silent_until_deauth() {
        let pnl = Pnl::from_entries([PnlEntry::open(ssid("X"), PnlOrigin::Public)]);
        let mut p = Phone::new(
            2,
            MacAddr::from_index([0xac, 0, 0], 2),
            OsKind::ModernAndroid,
            pnl,
            ScanConfig::default_2017(),
            0,
            true,
            true,
        );
        assert!(!p.is_probing());
        assert!(p.probes_for_scan().is_empty());
        p.handle_deauth();
        assert!(p.is_probing());
        assert_eq!(p.probes_for_scan().len(), 1);
    }

    #[test]
    fn wifi_off_phone_is_silent() {
        let pnl = Pnl::from_entries([PnlEntry::open(ssid("X"), PnlOrigin::Public)]);
        let mut p = Phone::new(
            3,
            MacAddr::from_index([0xac, 0, 0], 3),
            OsKind::ModernAndroid,
            pnl,
            ScanConfig::default_2017(),
            0,
            false,
            false,
        );
        assert!(!p.is_probing());
        assert!(p.probes_for_scan().is_empty());
        assert_eq!(p.evaluate_offer(&lure("X")), JoinDecision::Ignore);
    }

    #[test]
    fn probes_into_matches_the_allocating_wrapper() {
        let pnl = Pnl::from_entries([
            PnlEntry::open(ssid("A"), PnlOrigin::Public),
            PnlEntry::open(ssid("B"), PnlOrigin::Public),
            PnlEntry::open(ssid("C"), PnlOrigin::Public),
            PnlEntry::open(ssid("D"), PnlOrigin::Public),
        ]);
        let mut a = phone(OsKind::LegacyDirect, pnl.clone());
        let mut b = phone(OsKind::LegacyDirect, pnl);
        let mut buf = Vec::new();
        // Several rounds: the cursor state must advance identically, and
        // the buffer must be cleared (not appended) every round.
        for _ in 0..5 {
            a.probes_for_scan_into(&mut buf);
            assert_eq!(buf, b.probes_for_scan());
        }
        let cap = buf.capacity();
        a.probes_for_scan_into(&mut buf);
        assert_eq!(buf.capacity(), cap, "steady state must not reallocate");
    }

    #[test]
    fn legacy_with_empty_pnl_sends_only_broadcast() {
        let mut p = phone(OsKind::LegacyDirect, Pnl::new());
        let probes = p.probes_for_scan();
        assert_eq!(probes.len(), 1);
        assert!(probes[0].is_broadcast());
    }
}

#[cfg(test)]
mod mac_mode_tests {
    use super::*;
    use crate::pnl::{Pnl, PnlEntry, PnlOrigin};

    fn ssid(s: &str) -> Ssid {
        Ssid::new(s).unwrap()
    }

    fn randomizing_phone() -> Phone {
        Phone::new(
            42,
            MacAddr::randomized_from(42),
            OsKind::ModernAndroid,
            Pnl::from_entries([PnlEntry::open(ssid("X"), PnlOrigin::Public)]),
            ScanConfig::default_2017(),
            0,
            true,
            false,
        )
        .with_per_scan_mac()
    }

    #[test]
    fn per_scan_mac_rotates_every_round() {
        let mut p = randomizing_phone();
        let m1 = p.probes_for_scan()[0].source;
        let m2 = p.probes_for_scan()[0].source;
        let m3 = p.probes_for_scan()[0].source;
        assert_ne!(m1, m2);
        assert_ne!(m2, m3);
        assert_ne!(m1, m3);
        for m in [m1, m2, m3] {
            assert!(m.is_locally_administered(), "{m}");
            assert!(!m.is_multicast(), "{m}");
        }
        // The phone's own notion of its MAC tracks the latest rotation.
        assert_eq!(p.mac, m3);
    }

    #[test]
    fn stable_mac_never_rotates() {
        let mut p = randomizing_phone();
        p.mac_mode = MacMode::Stable;
        let before = p.mac;
        let _ = p.probes_for_scan();
        let _ = p.probes_for_scan();
        assert_eq!(p.mac, before);
    }

    #[test]
    fn rotation_is_deterministic_per_phone_and_round() {
        let mut a = randomizing_phone();
        let mut b = randomizing_phone();
        assert_eq!(a.probes_for_scan()[0].source, b.probes_for_scan()[0].source);
    }
}

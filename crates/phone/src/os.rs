//! Operating systems and probing policies.

use ch_sim::SimRng;

/// The operating-system families the probing behaviour depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsKind {
    /// A current iOS release: broadcast probes only; may carry carrier
    /// auto-join SSIDs (§V-B).
    ModernIos,
    /// A current Android release: broadcast probes only.
    ModernAndroid,
    /// An old Android / feature-phone stack that still walks its PNL with
    /// direct probes — the population KARMA and MANA harvest from.
    LegacyDirect,
}

/// What a phone reveals when it scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbePolicy {
    /// Sends a single wildcard (broadcast) probe per scan.
    BroadcastOnly,
    /// Sends a broadcast probe *and* direct probes for PNL entries,
    /// cycling through the list a few entries per scan.
    Direct {
        /// How many PNL entries are disclosed per scan round.
        entries_per_scan: usize,
    },
}

impl OsKind {
    /// The probing policy of this OS.
    pub fn probe_policy(self) -> ProbePolicy {
        match self {
            OsKind::ModernIos | OsKind::ModernAndroid => ProbePolicy::BroadcastOnly,
            OsKind::LegacyDirect => ProbePolicy::Direct {
                entries_per_scan: 3,
            },
        }
    }

    /// `true` if this OS ever sends direct probes.
    pub fn sends_direct(self) -> bool {
        matches!(self.probe_policy(), ProbePolicy::Direct { .. })
    }

    /// `true` for iOS (the carrier auto-join population).
    pub fn is_ios(self) -> bool {
        matches!(self, OsKind::ModernIos)
    }
}

/// The market mix of OS families.
#[derive(Debug, Clone, PartialEq)]
pub struct OsMix {
    /// Probability of [`OsKind::ModernIos`].
    pub ios: f64,
    /// Probability of [`OsKind::ModernAndroid`].
    pub android: f64,
    /// Probability of [`OsKind::LegacyDirect`] — the direct-probe share;
    /// the paper's field tests saw 85/614 ≈ 14 % and 103/688 ≈ 15 %.
    pub legacy: f64,
}

impl OsMix {
    /// A mix calibrated to the paper's observed ~14 % direct-probe share.
    pub fn hongkong_2017() -> Self {
        OsMix {
            ios: 0.42,
            android: 0.44,
            legacy: 0.14,
        }
    }

    /// Validates that the probabilities form a distribution.
    ///
    /// # Panics
    ///
    /// Panics unless the three shares are non-negative and sum to ~1.
    pub fn validate(&self) {
        let sum = self.ios + self.android + self.legacy;
        assert!(
            self.ios >= 0.0
                && self.android >= 0.0
                && self.legacy >= 0.0
                && (sum - 1.0).abs() < 1e-9,
            "os mix must sum to 1: {self:?}"
        );
    }

    /// Draws an OS.
    pub fn sample(&self, rng: &mut SimRng) -> OsKind {
        match rng
            .weighted_index(&[self.ios, self.android, self.legacy])
            .expect("mix validated")
        {
            0 => OsKind::ModernIos,
            1 => OsKind::ModernAndroid,
            _ => OsKind::LegacyDirect,
        }
    }
}

impl Default for OsMix {
    fn default() -> Self {
        OsMix::hongkong_2017()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_match_generations() {
        assert_eq!(OsKind::ModernIos.probe_policy(), ProbePolicy::BroadcastOnly);
        assert_eq!(
            OsKind::ModernAndroid.probe_policy(),
            ProbePolicy::BroadcastOnly
        );
        assert!(OsKind::LegacyDirect.sends_direct());
        assert!(!OsKind::ModernIos.sends_direct());
        assert!(OsKind::ModernIos.is_ios());
        assert!(!OsKind::LegacyDirect.is_ios());
    }

    #[test]
    fn default_mix_is_valid_and_matches_paper_share() {
        let mix = OsMix::default();
        mix.validate();
        assert!((mix.legacy - 0.14).abs() < 1e-9);
    }

    #[test]
    fn sampling_tracks_mix() {
        let mix = OsMix::hongkong_2017();
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let legacy = (0..n)
            .filter(|_| mix.sample(&mut rng) == OsKind::LegacyDirect)
            .count();
        let share = legacy as f64 / n as f64;
        assert!((share - 0.14).abs() < 0.01, "legacy share {share}");
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn invalid_mix_rejected() {
        OsMix {
            ios: 0.9,
            android: 0.9,
            legacy: 0.0,
        }
        .validate();
    }
}

//! Preferred Network Lists.
//!
//! A PNL entry remembers an SSID *and* the security type it was joined
//! with. That second half is what limits every SSID-luring attack: an evil
//! twin can advertise any SSID, but the victim only auto-joins if its PNL
//! entry is **open** — a protected entry demands the original network's
//! credentials, which the attacker does not have. The paper encodes this by
//! restricting its database to "SSIDs belonging to free APs" (§III-B).

use ch_sim::DetHashSet;

use ch_wifi::Ssid;

/// Security the network was joined with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkSecurity {
    /// Open network — auto-join on SSID match alone.
    Open,
    /// WPA2-protected — an open twin is not joined.
    Protected,
}

/// Why the entry is in the PNL (diagnostics and generation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PnlOrigin {
    /// The user's home network.
    Home,
    /// The user's workplace network.
    Work,
    /// A public hotspot the user once joined.
    Public,
    /// A network shared with the user's household/social group.
    Shared,
    /// A carrier-provisioned auto-join network (iOS, §V-B).
    Carrier,
    /// A network from outside the modelled city.
    Foreign,
}

/// One remembered network.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PnlEntry {
    /// Remembered SSID.
    pub ssid: Ssid,
    /// Remembered security type.
    pub security: NetworkSecurity,
    /// Provenance.
    pub origin: PnlOrigin,
}

impl PnlEntry {
    /// An open entry.
    pub fn open(ssid: Ssid, origin: PnlOrigin) -> Self {
        PnlEntry {
            ssid,
            security: NetworkSecurity::Open,
            origin,
        }
    }

    /// A protected entry.
    pub fn protected(ssid: Ssid, origin: PnlOrigin) -> Self {
        PnlEntry {
            ssid,
            security: NetworkSecurity::Protected,
            origin,
        }
    }
}

/// A phone's Preferred Network List.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pnl {
    entries: Vec<PnlEntry>,
}

impl Pnl {
    /// An empty PNL (a phone that never joined any network).
    pub fn new() -> Self {
        Pnl::default()
    }

    /// Builds from entries, dropping duplicate SSIDs (first wins — matching
    /// OS behaviour, where a rejoin updates rather than duplicates).
    pub fn from_entries(entries: impl IntoIterator<Item = PnlEntry>) -> Self {
        let mut pnl = Pnl::new();
        for e in entries {
            pnl.push(e);
        }
        pnl
    }

    /// Adds an entry unless the SSID is already remembered.
    /// Returns whether it was inserted.
    pub fn push(&mut self, entry: PnlEntry) -> bool {
        if self.contains_ssid(&entry.ssid) {
            false
        } else {
            self.entries.push(entry);
            true
        }
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[PnlEntry] {
        &self.entries
    }

    /// Number of remembered networks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if `ssid` is remembered (any security).
    pub fn contains_ssid(&self, ssid: &Ssid) -> bool {
        self.entries.iter().any(|e| &e.ssid == ssid)
    }

    /// The entry for `ssid`, if remembered.
    pub fn entry(&self, ssid: &Ssid) -> Option<&PnlEntry> {
        self.entries.iter().find(|e| &e.ssid == ssid)
    }

    /// `true` if an *open* twin advertising `ssid` would be auto-joined:
    /// the SSID is remembered as an open network.
    pub fn would_autojoin_open(&self, ssid: &Ssid) -> bool {
        self.entry(ssid)
            .is_some_and(|e| e.security == NetworkSecurity::Open)
    }

    /// The set of SSIDs a lure could hit (open entries).
    pub fn open_ssids(&self) -> DetHashSet<&Ssid> {
        self.entries
            .iter()
            .filter(|e| e.security == NetworkSecurity::Open)
            .map(|e| &e.ssid)
            .collect()
    }

    /// `true` if any open entry exists — the phone is luring-vulnerable.
    pub fn is_vulnerable(&self) -> bool {
        self.entries
            .iter()
            .any(|e| e.security == NetworkSecurity::Open)
    }
}

impl FromIterator<PnlEntry> for Pnl {
    fn from_iter<I: IntoIterator<Item = PnlEntry>>(iter: I) -> Self {
        Pnl::from_entries(iter)
    }
}

impl Extend<PnlEntry> for Pnl {
    fn extend<I: IntoIterator<Item = PnlEntry>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssid(s: &str) -> Ssid {
        Ssid::new(s).unwrap()
    }

    #[test]
    fn dedup_on_push() {
        let mut pnl = Pnl::new();
        assert!(pnl.push(PnlEntry::open(ssid("A"), PnlOrigin::Public)));
        assert!(!pnl.push(PnlEntry::protected(ssid("A"), PnlOrigin::Home)));
        assert_eq!(pnl.len(), 1);
        // First entry wins.
        assert_eq!(
            pnl.entry(&ssid("A")).unwrap().security,
            NetworkSecurity::Open
        );
    }

    #[test]
    fn autojoin_requires_open_entry() {
        let pnl = Pnl::from_entries([
            PnlEntry::open(ssid("FreeCafe"), PnlOrigin::Public),
            PnlEntry::protected(ssid("HomeNet"), PnlOrigin::Home),
        ]);
        assert!(pnl.would_autojoin_open(&ssid("FreeCafe")));
        assert!(!pnl.would_autojoin_open(&ssid("HomeNet")));
        assert!(!pnl.would_autojoin_open(&ssid("Unknown")));
        assert!(pnl.is_vulnerable());
    }

    #[test]
    fn protected_only_pnl_is_invulnerable() {
        let pnl = Pnl::from_entries([
            PnlEntry::protected(ssid("HomeNet"), PnlOrigin::Home),
            PnlEntry::protected(ssid("WorkNet"), PnlOrigin::Work),
        ]);
        assert!(!pnl.is_vulnerable());
        assert!(pnl.open_ssids().is_empty());
        assert_eq!(pnl.len(), 2);
    }

    #[test]
    fn empty_pnl() {
        let pnl = Pnl::new();
        assert!(pnl.is_empty());
        assert!(!pnl.is_vulnerable());
        assert!(!pnl.contains_ssid(&ssid("X")));
    }

    #[test]
    fn collect_from_iterator() {
        let pnl: Pnl = [
            PnlEntry::open(ssid("A"), PnlOrigin::Public),
            PnlEntry::open(ssid("B"), PnlOrigin::Shared),
            PnlEntry::open(ssid("A"), PnlOrigin::Public),
        ]
        .into_iter()
        .collect();
        assert_eq!(pnl.len(), 2);
        assert_eq!(pnl.open_ssids().len(), 2);
    }
}

//! Scan scheduling.
//!
//! Disconnected phones scan periodically; the interval (screen state,
//! power policy) varies per device. The scan cadence is what converts
//! *residence time near the attacker* into *scan opportunities*: a commuter
//! crossing the subway passage yields one or two scans (hence the 40/80
//! SSID histogram of Fig. 2(b)), a seated diner yields dozens.

use ch_sim::{SimDuration, SimRng, SimTime};

/// Per-device scan timing.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanConfig {
    /// Mean interval between scans while disconnected.
    pub mean_interval: SimDuration,
    /// Uniform jitter applied to each interval (fraction of the mean,
    /// `0.0..1.0`).
    pub jitter: f64,
}

impl ScanConfig {
    /// Default 2017-era disconnected-scan cadence: every ~60 s ± 50 %.
    pub fn default_2017() -> Self {
        ScanConfig {
            mean_interval: SimDuration::from_secs(60),
            jitter: 0.5,
        }
    }

    /// Draws a per-device config around the population default (some
    /// phones are chattier than others).
    pub fn sample(rng: &mut SimRng) -> Self {
        ScanConfig::sample_range(rng, (40.0, 90.0))
    }

    /// Draws a per-device config with the mean interval uniform in the
    /// given range of seconds — the population-level scan-cadence knob.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo <= hi`.
    pub fn sample_range(rng: &mut SimRng, (lo, hi): (f64, f64)) -> Self {
        assert!(lo > 0.0 && lo <= hi, "bad scan-interval range {lo}..{hi}");
        let mean = if lo == hi { lo } else { rng.range_f64(lo, hi) };
        ScanConfig {
            mean_interval: SimDuration::from_secs_f64(mean),
            jitter: 0.5,
        }
    }

    /// The next scan instant after `now`.
    pub fn next_after(&self, now: SimTime, rng: &mut SimRng) -> SimTime {
        let mean = self.mean_interval.as_secs_f64();
        let lo = mean * (1.0 - self.jitter);
        let hi = mean * (1.0 + self.jitter);
        now + SimDuration::from_secs_f64(rng.range_f64(lo, hi.max(lo + 1e-6)))
    }

    /// The first scan after the phone becomes active at `start`: uniform in
    /// one interval, so scan phases are uncorrelated across phones.
    pub fn first_after(&self, start: SimTime, rng: &mut SimRng) -> SimTime {
        let mean = self.mean_interval.as_secs_f64();
        start + SimDuration::from_secs_f64(rng.range_f64(0.0, mean))
    }
}

/// A materialized scan schedule over a visit window.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPlan {
    times: Vec<SimTime>,
}

impl ScanPlan {
    /// All scan instants in `[enter, exit]` for a phone with `config`.
    pub fn for_window(
        config: &ScanConfig,
        enter: SimTime,
        exit: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        let mut times = Vec::new();
        let mut t = config.first_after(enter, rng);
        while t <= exit {
            times.push(t);
            t = config.next_after(t, rng);
        }
        ScanPlan { times }
    }

    /// The scan instants, ascending.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Number of scans in the window.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the phone never scans during the window.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_bounded_by_jitter() {
        let cfg = ScanConfig::default_2017();
        let mut rng = SimRng::seed_from(1);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let next = cfg.next_after(t, &mut rng);
            let gap = next.since(t);
            assert!(gap >= SimDuration::from_secs(30), "{gap}");
            assert!(gap <= SimDuration::from_secs(90), "{gap}");
            t = next;
        }
    }

    #[test]
    fn first_scan_within_one_interval() {
        let cfg = ScanConfig::default_2017();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..100 {
            let first = cfg.first_after(SimTime::from_secs(100), &mut rng);
            assert!(first >= SimTime::from_secs(100));
            assert!(first <= SimTime::from_secs(160));
        }
    }

    #[test]
    fn transit_window_yields_one_or_two_scans() {
        // A ~75-second passage transit: mostly 1–2 scans, sometimes 0 —
        // the shape behind Fig. 2(b).
        let cfg = ScanConfig::default_2017();
        let mut rng = SimRng::seed_from(3);
        let mut histogram = [0usize; 4];
        for _ in 0..2_000 {
            let plan = ScanPlan::for_window(
                &cfg,
                SimTime::from_secs(0),
                SimTime::from_secs(75),
                &mut rng,
            );
            histogram[plan.len().min(3)] += 1;
        }
        assert!(histogram[1] > 1_000, "one-scan dominates: {histogram:?}");
        assert!(histogram[2] > 100, "two scans happen: {histogram:?}");
        assert!(histogram[3] < 50, "three scans are rare: {histogram:?}");
    }

    #[test]
    fn dwell_window_yields_many_scans() {
        let cfg = ScanConfig::default_2017();
        let mut rng = SimRng::seed_from(4);
        let plan = ScanPlan::for_window(&cfg, SimTime::ZERO, SimTime::from_mins(30), &mut rng);
        assert!(plan.len() >= 20, "{}", plan.len());
        assert!(plan.len() <= 60, "{}", plan.len());
        for pair in plan.times().windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn empty_window_no_scans() {
        let cfg = ScanConfig::default_2017();
        let mut rng = SimRng::seed_from(5);
        let plan = ScanPlan::for_window(
            &cfg,
            SimTime::from_secs(10),
            SimTime::from_secs(10),
            &mut rng,
        );
        // First scan lands uniformly in [10, 70): almost surely after exit.
        assert!(plan.len() <= 1);
    }

    #[test]
    fn sample_range_respects_bounds() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..50 {
            let cfg = ScanConfig::sample_range(&mut rng, (10.0, 20.0));
            assert!(cfg.mean_interval >= SimDuration::from_secs(10));
            assert!(cfg.mean_interval <= SimDuration::from_secs(20));
        }
        let fixed = ScanConfig::sample_range(&mut rng, (30.0, 30.0));
        assert_eq!(fixed.mean_interval, SimDuration::from_secs(30));
    }

    #[test]
    #[should_panic(expected = "bad scan-interval range")]
    fn sample_range_rejects_inverted() {
        let mut rng = SimRng::seed_from(9);
        let _ = ScanConfig::sample_range(&mut rng, (20.0, 10.0));
    }

    #[test]
    fn per_device_sampling_varies() {
        let mut rng = SimRng::seed_from(6);
        let a = ScanConfig::sample(&mut rng);
        let b = ScanConfig::sample(&mut rng);
        assert_ne!(a.mean_interval, b.mean_interval);
        assert!(a.mean_interval >= SimDuration::from_secs(40));
        assert!(a.mean_interval <= SimDuration::from_secs(90));
    }
}

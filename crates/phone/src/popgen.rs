//! Population generation: turning the city into phones.
//!
//! [`PublicSsidPool`] distils the WiGLE snapshot + heat map into the
//! distribution public PNL entries are drawn from; [`PopulationBuilder`]
//! mints phones group by group, wiring in every §II–§V behaviour knob via
//! [`PopulationParams`].

use std::sync::Arc;

use ch_geo::netdb::carrier_ssids;
use ch_geo::{HeatMap, SsidCategory, WigleSnapshot};
use ch_sim::SimRng;
use ch_wifi::{MacAddr, Ssid};

use crate::device::Phone;
use crate::os::OsMix;
use crate::pnl::{Pnl, PnlEntry, PnlOrigin};
use crate::scanner::ScanConfig;

/// The distribution of *public* networks across the population's PNLs.
///
/// Public entries are drawn proportionally to `ln(1 + heat)^alpha`: people
/// join the networks of places they go, but real PNLs are far less
/// concentrated than raw footfall (most joins are incidental, and a
/// network joined once counts the same as one joined daily), hence the
/// logarithmic damping, with `alpha` as the ablation knob.
#[derive(Debug, Clone)]
pub struct PublicSsidPool {
    ssids: Vec<Ssid>,
    weights: Vec<f64>,
    /// O(1) sampler over `weights` (None when the pool is empty).
    alias: Option<ch_sim::rng::WeightedAlias>,
    /// Indices of the unpopular half, used for group-shared ("our estate's
    /// Wi-Fi") sampling.
    tail: Vec<usize>,
}

impl PublicSsidPool {
    /// Builds the pool from the open, non-residential SSIDs of the
    /// snapshot, weighted by heat, with open residential networks included
    /// in the shared tail.
    pub fn build(wigle: &WigleSnapshot, heat: &HeatMap, alpha: f64) -> Self {
        let mut ssids = Vec::new();
        let mut weights = Vec::new();
        let mut seen = ch_sim::det_hash_set();
        for record in wigle.records() {
            if !record.open || !seen.insert(record.ssid.clone()) {
                continue;
            }
            let attractiveness = match record.category {
                SsidCategory::Residential => 0.5, // only the owners know it
                _ => wigle.ssid_heat(heat, &record.ssid).max(0.5),
            };
            ssids.push(record.ssid.clone());
            weights.push((1.0 + attractiveness).ln().powf(alpha.max(0.0)));
        }
        // Tail: the unpopular half (shared household/estate networks).
        let mut order: Vec<usize> = (0..ssids.len()).collect();
        order.sort_by(|&a, &b| {
            weights[a]
                .partial_cmp(&weights[b])
                .expect("weights are finite")
        });
        let tail = order[..order.len() / 2].to_vec();
        let alias = ch_sim::rng::WeightedAlias::new(&weights).ok();
        PublicSsidPool {
            ssids,
            weights,
            alias,
            tail,
        }
    }

    /// Number of luring-eligible SSIDs in the pool.
    pub fn len(&self) -> usize {
        self.ssids.len()
    }

    /// `true` if the pool has no SSIDs (empty WiGLE injection).
    pub fn is_empty(&self) -> bool {
        self.ssids.is_empty()
    }

    /// Draws one public SSID by attractiveness (O(1) via the alias table).
    pub fn sample_public(&self, rng: &mut SimRng) -> Option<Ssid> {
        self.alias
            .as_ref()
            .map(|alias| self.ssids[alias.sample(rng)].clone())
    }

    /// Draws one unpopular SSID (group-shared networks).
    pub fn sample_tail(&self, rng: &mut SimRng) -> Option<Ssid> {
        rng.choose(&self.tail).map(|&i| self.ssids[i].clone())
    }

    /// The probability mass of the `k` most attractive SSIDs — the
    /// theoretical ceiling on what a k-SSID lure list can cover.
    pub fn head_mass(&self, k: usize) -> f64 {
        let mut sorted = self.weights.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let total: f64 = sorted.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        sorted.iter().take(k).sum::<f64>() / total
    }
}

/// Behavioural parameters of the phone population.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationParams {
    /// OS market mix (drives the direct-probe share).
    pub os_mix: OsMix,
    /// Fraction of people whose phone has Wi-Fi on and probing.
    pub wifi_active: f64,
    /// Fraction already associated to a legitimate local AP (silent until
    /// deauthenticated, §V-B).
    pub connected_locally: f64,
    /// Fraction of phones with at least one *open public* PNL entry.
    pub has_public_open: f64,
    /// Extra public entries beyond the first: `1 + Poisson(this)`.
    pub extra_public_mean: f64,
    /// Flattening exponent on heat-weighted public sampling.
    pub attractiveness_alpha: f64,
    /// Probability a public entry points outside the modelled city.
    pub foreign_public: f64,
    /// Probability the phone remembers a home network.
    pub has_home: f64,
    /// Probability that the home network is open (legacy router).
    pub home_open: f64,
    /// Probability the phone remembers a (protected) work network.
    pub has_work: f64,
    /// Among iOS users, the fraction subscribed to a carrier with
    /// auto-join SSIDs.
    pub carrier_subscription: f64,
    /// Probability a group of ≥ 2 shares 1–2 household networks.
    pub group_shared: f64,
    /// Probability a shared network is open (only open ones matter to the
    /// attacker, but protected ones still occupy PNL slots).
    pub shared_open: f64,
    /// Range of per-device mean scan intervals, in seconds (phones scan
    /// for networks at this cadence while disconnected).
    pub scan_interval_secs: (f64, f64),
    /// Fraction of phones rotating to a fresh randomized MAC on *every*
    /// scan — the post-2017 privacy feature that breaks per-client
    /// bookkeeping (failure injection / forward-looking study; default 0,
    /// matching the paper's era).
    pub mac_randomizing: f64,
}

impl Default for PopulationParams {
    fn default() -> Self {
        PopulationParams {
            os_mix: OsMix::hongkong_2017(),
            wifi_active: 0.78,
            connected_locally: 0.10,
            has_public_open: 0.22,
            extra_public_mean: 0.9,
            attractiveness_alpha: 0.55,
            foreign_public: 0.45,
            has_home: 0.92,
            home_open: 0.03,
            has_work: 0.45,
            carrier_subscription: 0.40,
            group_shared: 0.30,
            shared_open: 0.50,
            scan_interval_secs: (40.0, 90.0),
            mac_randomizing: 0.0,
        }
    }
}

/// Mints phones for arriving groups.
#[derive(Debug, Clone)]
pub struct PopulationBuilder {
    /// Shared, immutable sampling distribution: campaign code builds the
    /// pool once per city and hands every builder the same `Arc`.
    pool: Arc<PublicSsidPool>,
    params: PopulationParams,
    carriers: Vec<Ssid>,
    next_phone_id: u32,
    /// Per-run MAC salt, so two runs' populations never collide on MAC —
    /// different people own different radios (drawn lazily from the first
    /// generation call's RNG to stay seed-deterministic).
    mac_salt: Option<u32>,
}

impl PopulationBuilder {
    /// Builds the generator from the city's network data.
    pub fn new(wigle: &WigleSnapshot, heat: &HeatMap, params: PopulationParams) -> Self {
        let pool = Arc::new(PublicSsidPool::build(
            wigle,
            heat,
            params.attractiveness_alpha,
        ));
        Self::with_shared_pool(pool, params)
    }

    /// Builds the generator around an already-built (shared) pool —
    /// the campaign path. The caller must have built `pool` at
    /// `params.attractiveness_alpha`; sampling draws depend only on the
    /// pool's contents, so a shared pool and a freshly built one yield
    /// bit-identical populations.
    pub fn with_shared_pool(pool: Arc<PublicSsidPool>, params: PopulationParams) -> Self {
        params.os_mix.validate();
        PopulationBuilder {
            pool,
            params,
            carriers: carrier_ssids(),
            next_phone_id: 1,
            mac_salt: None,
        }
    }

    /// The public-SSID pool (read access for analysis/benches).
    pub fn pool(&self) -> &PublicSsidPool {
        &self.pool
    }

    /// A clone of the shared pool handle (campaign code reuses it for
    /// sibling builders).
    pub fn shared_pool(&self) -> Arc<PublicSsidPool> {
        Arc::clone(&self.pool)
    }

    /// The parameters in force.
    pub fn params(&self) -> &PopulationParams {
        &self.params
    }

    /// Generates the phones of one companion group.
    pub fn phones_for_group(&mut self, group_id: u32, size: usize, rng: &mut SimRng) -> Vec<Phone> {
        let mac_salt = *self
            .mac_salt
            .get_or_insert_with(|| (rng.next_u64() & 0x7f_ffff) as u32);
        let p = &self.params;

        // Group-shared household networks (the freshness signal, §IV-A).
        let mut shared: Vec<PnlEntry> = Vec::new();
        if size >= 2 && rng.chance(p.group_shared) {
            let count = if rng.chance(0.35) { 2 } else { 1 };
            for _ in 0..count {
                if let Some(ssid) = self.pool.sample_tail(rng) {
                    let entry = if rng.chance(p.shared_open) {
                        PnlEntry::open(ssid, PnlOrigin::Shared)
                    } else {
                        PnlEntry::protected(ssid, PnlOrigin::Shared)
                    };
                    shared.push(entry);
                }
            }
        }

        (0..size)
            .map(|_| {
                let id = self.next_phone_id;
                self.next_phone_id += 1;
                let os = p.os_mix.sample(rng);
                let randomizing = rng.chance(p.mac_randomizing);
                let mac = if randomizing {
                    MacAddr::randomized_from(rng.next_u64())
                } else {
                    // XOR with the run salt keeps within-run uniqueness
                    // (injective for ids < 2^23) while separating runs.
                    MacAddr::from_index([0xac, 0x37, 0x43], id ^ mac_salt)
                };

                let mut pnl = Pnl::new();
                // Home network: unique per person, usually protected.
                if rng.chance(p.has_home) {
                    let home = Ssid::new_lossy(format!("HomeAP-{id:05x}"));
                    let entry = if rng.chance(p.home_open) {
                        PnlEntry::open(home, PnlOrigin::Home)
                    } else {
                        PnlEntry::protected(home, PnlOrigin::Home)
                    };
                    pnl.push(entry);
                }
                // Work network: always protected.
                if rng.chance(p.has_work) {
                    pnl.push(PnlEntry::protected(
                        Ssid::new_lossy(format!("Corp-{:04x}", id % 997)),
                        PnlOrigin::Work,
                    ));
                }
                // Public hotspots.
                if rng.chance(p.has_public_open) && !self.pool.is_empty() {
                    let k = 1 + rng.poisson(p.extra_public_mean) as usize;
                    for _ in 0..k {
                        if rng.chance(p.foreign_public) {
                            pnl.push(PnlEntry::open(
                                Ssid::new_lossy(format!("Away-{:06x}", rng.next_u64() & 0xff_ffff)),
                                PnlOrigin::Foreign,
                            ));
                        } else if let Some(ssid) = self.pool.sample_public(rng) {
                            pnl.push(PnlEntry::open(ssid, PnlOrigin::Public));
                        }
                    }
                }
                // Carrier auto-join (iOS subscribers, §V-B).
                if os.is_ios() && rng.chance(p.carrier_subscription) {
                    let carrier = self.carriers[rng.range_usize(0, self.carriers.len())].clone();
                    pnl.push(PnlEntry::open(carrier, PnlOrigin::Carrier));
                }
                // Shared household entries.
                pnl.extend(shared.iter().cloned());

                let phone = Phone::new(
                    id,
                    mac,
                    os,
                    pnl,
                    ScanConfig::sample_range(rng, p.scan_interval_secs),
                    group_id,
                    rng.chance(p.wifi_active),
                    rng.chance(p.connected_locally),
                );
                if randomizing {
                    phone.with_per_scan_mac()
                } else {
                    phone
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::OsKind;
    use crate::pnl::NetworkSecurity;
    use ch_geo::{CityModel, PhotoCollection};

    fn builder(params: PopulationParams) -> PopulationBuilder {
        let mut rng = SimRng::seed_from(10);
        let city = CityModel::synthesize(&mut rng);
        let wigle = WigleSnapshot::synthesize(&city, &mut rng);
        let photos = PhotoCollection::synthesize(&city, 20_000, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 100.0);
        PopulationBuilder::new(&wigle, &heat, params)
    }

    fn population(n_groups: usize, seed: u64) -> Vec<Phone> {
        let mut b = builder(PopulationParams::default());
        let mut rng = SimRng::seed_from(seed);
        let mut phones = Vec::new();
        for g in 0..n_groups {
            let size = 1 + (g % 3);
            phones.extend(b.phones_for_group(g as u32, size, &mut rng));
        }
        phones
    }

    #[test]
    fn ids_and_macs_unique() {
        let phones = population(500, 1);
        let mut ids: Vec<u32> = phones.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), phones.len());
        let mut macs: Vec<_> = phones.iter().map(|p| p.mac).collect();
        macs.sort();
        macs.dedup();
        assert_eq!(macs.len(), phones.len());
    }

    #[test]
    fn legacy_share_tracks_mix() {
        let phones = population(2_000, 2);
        let legacy = phones
            .iter()
            .filter(|p| p.os == OsKind::LegacyDirect)
            .count();
        let share = legacy as f64 / phones.len() as f64;
        assert!((0.11..0.18).contains(&share), "legacy share {share}");
    }

    #[test]
    fn vulnerability_rate_in_calibration_band() {
        // Fraction of phones with ≥1 open *in-city* luring target. The
        // population knob has_public_open=0.42 is diluted by foreign
        // entries but topped up by carrier/home-open/shared entries.
        let phones = population(2_000, 3);
        let vulnerable = phones.iter().filter(|p| p.pnl.is_vulnerable()).count();
        let share = vulnerable as f64 / phones.len() as f64;
        assert!((0.25..0.60).contains(&share), "vulnerable share {share}");
    }

    #[test]
    fn group_members_share_networks_sometimes() {
        let mut b = builder(PopulationParams::default());
        let mut rng = SimRng::seed_from(4);
        let mut groups_with_shared = 0;
        let total = 300;
        for g in 0..total {
            let phones = b.phones_for_group(g, 2, &mut rng);
            let shared: Vec<_> = phones[0]
                .pnl
                .entries()
                .iter()
                .filter(|e| e.origin == PnlOrigin::Shared)
                .map(|e| e.ssid.clone())
                .collect();
            if !shared.is_empty() {
                groups_with_shared += 1;
                // The companion remembers the same shared networks.
                for ssid in &shared {
                    assert!(phones[1].pnl.contains_ssid(ssid));
                }
            }
        }
        let share = groups_with_shared as f64 / total as f64;
        assert!((0.18..0.45).contains(&share), "shared-group rate {share}");
    }

    #[test]
    fn singletons_never_have_shared_entries() {
        let mut b = builder(PopulationParams::default());
        let mut rng = SimRng::seed_from(5);
        for g in 0..100 {
            let phones = b.phones_for_group(g, 1, &mut rng);
            assert!(phones[0]
                .pnl
                .entries()
                .iter()
                .all(|e| e.origin != PnlOrigin::Shared));
        }
    }

    #[test]
    fn carrier_entries_only_on_ios() {
        let phones = population(2_000, 6);
        for p in &phones {
            let has_carrier = p
                .pnl
                .entries()
                .iter()
                .any(|e| e.origin == PnlOrigin::Carrier);
            if has_carrier {
                assert_eq!(p.os, OsKind::ModernIos);
            }
        }
        // And some iOS phones do carry them.
        assert!(phones.iter().any(|p| p
            .pnl
            .entries()
            .iter()
            .any(|e| e.origin == PnlOrigin::Carrier)));
    }

    #[test]
    fn work_networks_always_protected() {
        let phones = population(500, 7);
        for p in &phones {
            for e in p.pnl.entries() {
                if e.origin == PnlOrigin::Work {
                    assert_eq!(e.security, NetworkSecurity::Protected);
                }
            }
        }
    }

    #[test]
    fn pool_head_mass_is_moderate() {
        // The top-40 lure list must cover a meaningful but not dominant
        // share of public-entry mass — the §III/§V calibration regime
        // (h_b per 40-SSID scan in the low tens of percent, not ~100 %).
        let b = builder(PopulationParams::default());
        let mass = b.pool().head_mass(40);
        assert!((0.08..0.45).contains(&mass), "head mass {mass}");
        assert!(b.pool().len() > 150, "pool size {}", b.pool().len());
    }

    #[test]
    fn empty_wigle_yields_phones_without_public_entries() {
        let params = PopulationParams::default();
        let wigle = WigleSnapshot::empty();
        let mut rng = SimRng::seed_from(8);
        let city = CityModel::synthesize(&mut rng);
        let photos = PhotoCollection::synthesize(&city, 100, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 200.0);
        let mut b = PopulationBuilder::new(&wigle, &heat, params);
        let phones = b.phones_for_group(0, 3, &mut rng);
        assert_eq!(phones.len(), 3);
        for p in &phones {
            assert!(p
                .pnl
                .entries()
                .iter()
                .all(|e| e.origin != PnlOrigin::Public));
        }
    }

    #[test]
    fn mac_randomization_failure_injection() {
        let params = PopulationParams {
            mac_randomizing: 1.0,
            ..PopulationParams::default()
        };
        let mut b = builder(params);
        let mut rng = SimRng::seed_from(9);
        let phones = b.phones_for_group(0, 4, &mut rng);
        for p in &phones {
            assert!(p.mac.is_locally_administered(), "{}", p.mac);
        }
    }

    #[test]
    fn determinism() {
        let a = population(50, 42);
        let b = population(50, 42);
        assert_eq!(a, b);
    }
}

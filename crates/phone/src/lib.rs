//! # ch-phone — the smartphone population
//!
//! The attack's victims. Each [`device::Phone`] owns a Preferred Network
//! List ([`pnl::Pnl`]) generated from the same synthetic city the attacker
//! mines, an OS-dependent probing policy ([`os`]), a periodic scan schedule
//! ([`scanner`]) and open-network auto-join logic ([`device`]).
//!
//! The calibration story (§II–§III of the paper, Table I):
//!
//! * most phones send only **broadcast** probes; ~14 % are legacy devices
//!   that also send **direct** probes disclosing PNL entries;
//! * only a minority of phones carry *open public* networks in their PNL
//!   at all — those are the only clients any SSID-luring attack can catch;
//! * public PNL entries skew towards the SSIDs people actually encounter
//!   (heat-weighted), with a flattening exponent and a "foreign network"
//!   share standing in for everything a city-wide WiGLE snapshot cannot
//!   know;
//! * companions in a group share extra, *unpopular* networks (their estate,
//!   their office) — the §IV-A social signal the freshness buffer exploits;
//! * iOS devices of subscribing users carry carrier auto-join SSIDs
//!   (`PCCW1x` et al., §V-B) that appear in no public database.
//!
//! All knobs live in [`popgen::PopulationParams`] so experiments and
//! ablations can move them deliberately.
//!
//! ```
//! use ch_phone::popgen::{PopulationBuilder, PopulationParams};
//! use ch_geo::{CityModel, HeatMap, PhotoCollection, WigleSnapshot};
//! use ch_sim::SimRng;
//!
//! let mut rng = SimRng::seed_from(1);
//! let city = CityModel::synthesize(&mut rng);
//! let wigle = WigleSnapshot::synthesize(&city, &mut rng);
//! let photos = PhotoCollection::synthesize(&city, 10_000, &mut rng);
//! let heat = HeatMap::from_photos(&city, &photos, 100.0);
//! let mut builder = PopulationBuilder::new(&wigle, &heat, PopulationParams::default());
//! let phones = builder.phones_for_group(7, 3, &mut rng);
//! assert_eq!(phones.len(), 3);
//! ```

pub mod device;
pub mod os;
pub mod pnl;
pub mod popgen;
pub mod scanner;

pub use device::{JoinDecision, MacMode, Phone};
pub use os::{OsKind, ProbePolicy};
pub use pnl::{NetworkSecurity, Pnl, PnlEntry, PnlOrigin};
pub use popgen::{PopulationBuilder, PopulationParams, PublicSsidPool};
pub use scanner::{ScanConfig, ScanPlan};

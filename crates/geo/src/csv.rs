//! WiGLE-style CSV export/import.
//!
//! The real City-Hunter was seeded from wigle.net exports. This module
//! round-trips our synthetic snapshot through a WiGLE-like CSV so that
//! (a) users can eyeball the data the attacker starts from, and (b) an
//! externally produced file in the same shape can be loaded instead of the
//! synthetic one.
//!
//! Columns: `netid,ssid,trilat,trilong,encryption,category` — the subset
//! of WiGLE's export schema the attack consumes. SSIDs are CSV-quoted, so
//! names containing commas, quotes or leading `#` survive.

use std::fmt::Write as _;

use ch_wifi::{MacAddr, Ssid};

use crate::netdb::{NetworkRecord, SsidCategory, WigleSnapshot};
use crate::point::GeoPoint;

/// The header line written and expected.
pub const HEADER: &str = "netid,ssid,trilat,trilong,encryption,category";

/// Error importing a CSV snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// The first line is not [`HEADER`].
    BadHeader {
        /// What was found instead.
        found: String,
    },
    /// A data line has the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
        /// Offending value.
        value: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader { found } => {
                write!(f, "bad csv header: expected {HEADER:?}, found {found:?}")
            }
            CsvError::FieldCount { line, found } => {
                write!(f, "line {line}: expected 6 fields, found {found}")
            }
            CsvError::BadField {
                line,
                column,
                value,
            } => write!(f, "line {line}: bad {column} value {value:?}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Exports a snapshot as WiGLE-style CSV.
pub fn to_csv(snapshot: &WigleSnapshot) -> String {
    let mut out = String::with_capacity(64 * snapshot.len() + HEADER.len());
    out.push_str(HEADER);
    out.push('\n');
    for record in snapshot.records() {
        let (lat, lon) = record.location.to_lat_lon();
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.6},{},{}",
            record.bssid,
            quote(record.ssid.as_str()),
            lat,
            lon,
            if record.open { "none" } else { "wpa2" },
            category_str(record.category),
        );
    }
    out
}

/// Imports a snapshot from WiGLE-style CSV.
///
/// # Errors
///
/// Any [`CsvError`] on malformed input.
pub fn from_csv(text: &str) -> Result<WigleSnapshot, CsvError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim_end() == HEADER => {}
        Some((_, header)) => {
            return Err(CsvError::BadHeader {
                found: header.to_owned(),
            })
        }
        None => {
            return Err(CsvError::BadHeader {
                found: String::new(),
            })
        }
    }
    let mut records = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv(line);
        if fields.len() != 6 {
            return Err(CsvError::FieldCount {
                line: line_no,
                found: fields.len(),
            });
        }
        let bad = |column: &'static str, value: &str| CsvError::BadField {
            line: line_no,
            column,
            value: value.to_owned(),
        };
        let bssid: MacAddr = fields[0].parse().map_err(|_| bad("netid", &fields[0]))?;
        let ssid = Ssid::new(fields[1].clone()).map_err(|_| bad("ssid", &fields[1]))?;
        let lat: f64 = fields[2].parse().map_err(|_| bad("trilat", &fields[2]))?;
        let lon: f64 = fields[3].parse().map_err(|_| bad("trilong", &fields[3]))?;
        let open = match fields[4].as_str() {
            "none" => true,
            "wpa2" | "wpa" | "wep" => false,
            other => return Err(bad("encryption", other)),
        };
        let category = parse_category(&fields[5]).ok_or_else(|| bad("category", &fields[5]))?;
        records.push(NetworkRecord {
            ssid,
            bssid,
            location: lat_lon_to_point(lat, lon),
            open,
            category,
        });
    }
    Ok(WigleSnapshot::from_records(records))
}

fn category_str(category: SsidCategory) -> &'static str {
    match category {
        SsidCategory::Chain => "chain",
        SsidCategory::Hotspot => "hotspot",
        SsidCategory::Venue => "venue",
        SsidCategory::Residential => "residential",
        SsidCategory::Carrier => "carrier",
    }
}

fn parse_category(s: &str) -> Option<SsidCategory> {
    Some(match s {
        "chain" => SsidCategory::Chain,
        "hotspot" => SsidCategory::Hotspot,
        "venue" => SsidCategory::Venue,
        "residential" => SsidCategory::Residential,
        "carrier" => SsidCategory::Carrier,
        _ => return None,
    })
}

fn lat_lon_to_point(lat: f64, lon: f64) -> GeoPoint {
    use crate::point::{ORIGIN_LAT, ORIGIN_LON};
    const METERS_PER_DEG_LAT: f64 = 111_320.0;
    let north_m = (lat - ORIGIN_LAT) * METERS_PER_DEG_LAT;
    let meters_per_deg_lon = METERS_PER_DEG_LAT * ORIGIN_LAT.to_radians().cos();
    let east_m = (lon - ORIGIN_LON) * meters_per_deg_lon;
    GeoPoint::new(east_m, north_m)
}

/// RFC-4180-style quoting: always quote the SSID field, doubling any
/// embedded quotes.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        if c == '"' {
            out.push('"');
        }
        out.push(c);
    }
    out.push('"');
    out
}

/// Splits one CSV line honouring quoted fields.
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
            }
            other => current.push(other),
        }
    }
    fields.push(current);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityModel;
    use ch_sim::SimRng;
    use proptest::prelude::*;

    #[test]
    fn full_snapshot_roundtrip() {
        let mut rng = SimRng::seed_from(0xC5);
        let city = CityModel::synthesize(&mut rng);
        let snapshot = WigleSnapshot::synthesize(&city, &mut rng);
        let csv = to_csv(&snapshot);
        let restored = from_csv(&csv).unwrap();
        assert_eq!(restored.len(), snapshot.len());
        assert_eq!(restored.ssid_count(), snapshot.ssid_count());
        // Spot-check a record: identity fields exact, location within the
        // 1e-6-degree print precision (~0.1 m).
        let a = &snapshot.records()[123];
        let b = &restored.records()[123];
        assert_eq!(a.ssid, b.ssid);
        assert_eq!(a.bssid, b.bssid);
        assert_eq!(a.open, b.open);
        assert_eq!(a.category, b.category);
        assert!(a.location.distance_to(b.location) < 0.5);
    }

    #[test]
    fn tricky_ssids_survive() {
        let tricky = [
            "has,comma",
            "has\"quote",
            "#HKAirport Free WiFi",
            " leading space",
            "",
        ];
        let records: Vec<NetworkRecord> = tricky
            .iter()
            .enumerate()
            .map(|(i, name)| NetworkRecord {
                ssid: Ssid::new(*name).unwrap(),
                bssid: MacAddr::from_index([0, 0, 1], i as u32 + 1),
                location: GeoPoint::new(10.0 * i as f64, 5.0),
                open: i % 2 == 0,
                category: SsidCategory::Chain,
            })
            .collect();
        let snapshot = WigleSnapshot::from_records(records);
        let restored = from_csv(&to_csv(&snapshot)).unwrap();
        for (a, b) in snapshot.records().iter().zip(restored.records()) {
            assert_eq!(a.ssid, b.ssid);
            assert_eq!(a.open, b.open);
        }
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            from_csv("wrong,header\n"),
            Err(CsvError::BadHeader { .. })
        ));
        assert!(matches!(from_csv(""), Err(CsvError::BadHeader { .. })));
    }

    #[test]
    fn field_errors_carry_line_numbers() {
        let csv = format!("{HEADER}\nzz:zz:zz:zz:zz:zz,\"X\",22.3,114.1,none,chain\n");
        match from_csv(&csv) {
            Err(CsvError::BadField { line, column, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(column, "netid");
            }
            other => panic!("{other:?}"),
        }
        let csv = format!("{HEADER}\nonly,three,fields\n");
        assert!(matches!(
            from_csv(&csv),
            Err(CsvError::FieldCount { line: 2, found: 3 })
        ));
        let csv = format!("{HEADER}\n00:1b:2f:00:00:01,\"X\",22.3,114.1,rot13,chain\n");
        assert!(matches!(
            from_csv(&csv),
            Err(CsvError::BadField {
                column: "encryption",
                ..
            })
        ));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = format!("{HEADER}\n\n00:1b:2f:00:00:01,\"A\",22.30,114.17,none,venue\n\n");
        let snapshot = from_csv(&csv).unwrap();
        assert_eq!(snapshot.len(), 1);
    }

    proptest! {
        #[test]
        fn prop_ssid_roundtrip_through_csv(name in "[ -~]{0,32}") {
            prop_assume!(Ssid::new(name.clone()).is_ok());
            let record = NetworkRecord {
                ssid: Ssid::new(name).unwrap(),
                bssid: MacAddr::from_index([0, 0, 2], 7),
                location: GeoPoint::new(100.0, 200.0),
                open: true,
                category: SsidCategory::Hotspot,
            };
            let snapshot = WigleSnapshot::from_records(vec![record.clone()]);
            let restored = from_csv(&to_csv(&snapshot)).unwrap();
            prop_assert_eq!(&restored.records()[0].ssid, &record.ssid);
        }
    }
}

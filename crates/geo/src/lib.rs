//! # ch-geo — synthetic city, WiGLE-like AP database, photo heat map
//!
//! City-Hunter seeds its SSID database *offline* from two public data
//! sources: the WiGLE wardriving database (which APs exist where, and
//! whether they are open) and geotagged photos (a crowd-density proxy used
//! to build a city *heat map*). Neither source is available to this
//! reproduction, so this crate synthesizes a city with the same statistical
//! structure:
//!
//! * [`city`] — districts and points of interest (malls, an airport,
//!   stations, eateries, residential blocks) with footfall weights;
//! * [`netdb`] — a WiGLE-like snapshot of network records: city-wide chain
//!   SSIDs with hundreds of APs, hotspot SSIDs concentrated at high-footfall
//!   POIs, a long tail of (mostly protected) residential networks, and
//!   carrier SSIDs;
//! * [`photos`] — a synthetic geotagged-photo collection whose density
//!   tracks POI footfall (plus noise), standing in for Instagram/Panoramio;
//! * [`heat`] — the grid heat map built from photos, and the per-SSID heat
//!   value (sum of heat at the SSID's AP locations, §IV-B);
//! * [`weights`] — the rank-order ("ratio method") weight assignment the
//!   paper takes from Barron & Barrett 1996.
//!
//! The phone population in `ch-phone` draws its Preferred Network Lists
//! from this same city, which is precisely the correlation the attack
//! exploits.
//!
//! ```
//! use ch_geo::{city::CityModel, heat::HeatMap, netdb::WigleSnapshot, photos::PhotoCollection};
//! use ch_sim::SimRng;
//!
//! let mut rng = SimRng::seed_from(7);
//! let city = CityModel::synthesize(&mut rng);
//! let snapshot = WigleSnapshot::synthesize(&city, &mut rng);
//! let photos = PhotoCollection::synthesize(&city, 20_000, &mut rng);
//! let heat = HeatMap::from_photos(&city, &photos, 50.0);
//! let ranked = snapshot.top_by_heat(&heat, 5);
//! assert_eq!(ranked.len(), 5);
//! ```

pub mod city;
pub mod csv;
pub mod heat;
pub mod netdb;
pub mod photos;
pub mod point;
pub mod weights;

pub use city::{CityModel, District, Poi, PoiKind};
pub use heat::HeatMap;
pub use netdb::{NetworkRecord, SsidCategory, WigleSnapshot};
pub use photos::PhotoCollection;
pub use point::GeoPoint;

//! The WiGLE-like network database.
//!
//! [`WigleSnapshot`] is the offline data source City-Hunter mines before
//! deployment (§III-B, §IV-B): every wardriven AP in the city with its
//! SSID, location and security posture. The synthesis reproduces the
//! structure the paper reports for Hong Kong:
//!
//! * a head of *city-wide chain* SSIDs with hundreds of APs each
//!   ('-Free HKBN Wi-Fi-', '7-Eleven Free Wifi', …);
//! * *hotspot* SSIDs with few APs but enormous footfall
//!   ('#HKAirport Free WiFi' has ~231 APs yet top-5 heat, 'Free Public
//!   WiFi' ~400 APs in crowded spots);
//! * venue SSIDs tied to single POIs; and
//! * a long, mostly-protected residential tail.
//!
//! Carrier SSIDs (e.g. 'PCCW1x') are deliberately *absent*: the paper notes
//! they can be obtained neither from WiGLE nor from direct probes, which is
//! what makes the §V-B carrier extension interesting. They live in
//! [`carrier_ssids`].

use std::collections::HashMap;

use ch_sim::SimRng;
use ch_wifi::{MacAddr, Ssid};

use crate::city::{CityModel, PoiKind};
use crate::heat::HeatMap;
use crate::point::GeoPoint;

/// Why an SSID exists in the city — drives AP counts, placement and
/// security posture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SsidCategory {
    /// City-wide chain (convenience stores, coffee shops, ISP hotspots).
    Chain,
    /// Few APs concentrated at one or two high-footfall locations.
    Hotspot,
    /// Venue-specific network of a single POI.
    Venue,
    /// A home network.
    Residential,
    /// A mobile-carrier auto-join network (never in WiGLE).
    Carrier,
}

/// One AP observation, WiGLE-style.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkRecord {
    /// Advertised SSID.
    pub ssid: Ssid,
    /// AP BSSID.
    pub bssid: MacAddr,
    /// Wardriven location.
    pub location: GeoPoint,
    /// `true` if the network is open (no WPA2) — the only networks an
    /// evil twin can auto-join a victim onto.
    pub open: bool,
    /// Category of the owning SSID.
    pub category: SsidCategory,
}

/// The paper-visible head of the chain distribution: `(ssid, ap_count,
/// open)`. Counts are arranged so that ranking by raw AP count puts
/// '#HKAirport Free WiFi' at rank 13, matching §IV-B.
const CHAIN_HEAD: [(&str, usize, bool); 13] = [
    ("-Free HKBN Wi-Fi-", 1_100, true),
    ("7-Eleven Free Wifi", 924, true),
    ("-Circle K Free Wi-Fi-", 850, true),
    ("CSL", 800, true),
    ("CMCC-WEB", 760, true),
    ("Starbucks Free WiFi", 600, true),
    ("McDonald's Free WiFi", 550, true),
    ("Maxim's WiFi", 500, true),
    ("KFC Free WiFi", 450, true),
    ("Pacific Coffee WiFi", 420, true),
    ("Free Public WiFi", 400, true),
    ("MTR Free Wi-Fi", 380, true),
    ("#HKAirport Free WiFi", 231, true),
];

/// Number of generated long-tail chain SSIDs.
const CHAIN_TAIL: usize = 80;

/// Number of residential networks in the snapshot.
const RESIDENTIAL_COUNT: usize = 6_000;

/// Fraction of residential networks that are open (legacy routers).
const RESIDENTIAL_OPEN_FRACTION: f64 = 0.08;

/// The carrier auto-join SSIDs pre-provisioned on subscriber phones
/// (§V-B); obtainable neither from WiGLE nor from direct probes.
pub fn carrier_ssids() -> Vec<Ssid> {
    [
        "PCCW1x",
        "CSL-Auto",
        "CMHK-auto",
        "SmarTone-Auto",
        "3HK-Auto",
    ]
    .into_iter()
    .map(|s| Ssid::new(s).expect("carrier ssids are short"))
    .collect()
}

/// The wardriving snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct WigleSnapshot {
    records: Vec<NetworkRecord>,
    by_ssid: HashMap<Ssid, Vec<usize>>,
}

impl WigleSnapshot {
    /// Builds a snapshot from explicit records (used by tests and failure
    /// injection; experiments use [`WigleSnapshot::synthesize`]).
    pub fn from_records(records: Vec<NetworkRecord>) -> Self {
        let mut by_ssid: HashMap<Ssid, Vec<usize>> = HashMap::new();
        for (i, r) in records.iter().enumerate() {
            by_ssid.entry(r.ssid.clone()).or_default().push(i);
        }
        WigleSnapshot { records, by_ssid }
    }

    /// An empty snapshot (failure-injection: attacker with no offline
    /// data).
    pub fn empty() -> Self {
        WigleSnapshot::from_records(Vec::new())
    }

    /// Synthesizes the city's wardriving database.
    pub fn synthesize(city: &CityModel, rng: &mut SimRng) -> Self {
        let mut rng = rng.fork("wigle");
        let mut records = Vec::new();
        let mut bssid_counter: u32 = 1;
        let mint = |counter: &mut u32| {
            let mac = MacAddr::from_index([0x00, 0x1b, 0x2f], *counter);
            *counter += 1;
            mac
        };

        // --- Chain head -------------------------------------------------
        for (name, count, open) in CHAIN_HEAD {
            let ssid = Ssid::new(name).expect("chain names are short");
            for _ in 0..count {
                let location = match name {
                    // The airport SSID lives in the terminals, right where
                    // the crowds (and their photos) are (§IV-B).
                    "#HKAirport Free WiFi" => jitter(airport_location(city), 120.0, &mut rng),
                    // 'Free Public WiFi' sits in crowded locations.
                    "Free Public WiFi" => jitter(
                        city.sample_poi_by_footfall(&mut rng).location,
                        80.0,
                        &mut rng,
                    ),
                    // The MTR network lives at stations.
                    "MTR Free Wi-Fi" => {
                        let stations: Vec<_> = city
                            .pois_of_kind(PoiKind::SubwayStation)
                            .chain(city.pois_of_kind(PoiKind::RailwayStation))
                            .collect();
                        let poi = stations[rng.range_usize(0, stations.len())];
                        jitter(poi.location, 120.0, &mut rng)
                    }
                    // Everything else: streetside, biased towards places
                    // people go but with a uniform component.
                    _ => {
                        if rng.chance(0.6) {
                            jitter(
                                city.sample_poi_by_footfall(&mut rng).location,
                                150.0,
                                &mut rng,
                            )
                        } else {
                            city.extent().sample(&mut rng)
                        }
                    }
                };
                records.push(NetworkRecord {
                    ssid: ssid.clone(),
                    bssid: mint(&mut bssid_counter),
                    location,
                    open,
                    category: match name {
                        "#HKAirport Free WiFi" | "Free Public WiFi" => SsidCategory::Hotspot,
                        _ => SsidCategory::Chain,
                    },
                });
            }
        }

        // --- Chain tail ---------------------------------------------------
        for i in 0..CHAIN_TAIL {
            let ssid = Ssid::new_lossy(format!("ShopNet-{:02} Free WiFi", i + 1));
            // Counts decay from ~200 down to ~10.
            let count = (200.0 / (1.0 + i as f64 * 0.25)).ceil() as usize;
            let open = rng.chance(0.75);
            for _ in 0..count {
                let location = if rng.chance(0.5) {
                    jitter(
                        city.sample_poi_by_footfall(&mut rng).location,
                        150.0,
                        &mut rng,
                    )
                } else {
                    city.extent().sample(&mut rng)
                };
                records.push(NetworkRecord {
                    ssid: ssid.clone(),
                    bssid: mint(&mut bssid_counter),
                    location,
                    open,
                    category: SsidCategory::Chain,
                });
            }
        }

        // --- Venue networks ------------------------------------------------
        for poi in city.pois() {
            let aps = match poi.kind {
                PoiKind::Airport => 0, // covered by the hotspot SSID above
                PoiKind::RailwayStation => 12,
                PoiKind::Mall => 10,
                PoiKind::SubwayStation => 4,
                PoiKind::Canteen => 2,
                PoiKind::OfficeBlock => 3,
                _ => 0,
            };
            if aps == 0 {
                continue;
            }
            let open = poi.kind != PoiKind::OfficeBlock;
            let ssid = Ssid::new_lossy(format!("{} WiFi", poi.name));
            for _ in 0..aps {
                records.push(NetworkRecord {
                    ssid: ssid.clone(),
                    bssid: mint(&mut bssid_counter),
                    location: jitter(poi.location, 60.0, &mut rng),
                    open,
                    category: SsidCategory::Venue,
                });
            }
        }

        // --- Residential tail ---------------------------------------------
        let residential: Vec<_> = city
            .pois_of_kind(PoiKind::ResidentialBlock)
            .cloned()
            .collect();
        for i in 0..RESIDENTIAL_COUNT {
            let home = &residential[rng.range_usize(0, residential.len())];
            let ssid = Ssid::new_lossy(format!("HomeNet-{:04x}", i));
            records.push(NetworkRecord {
                ssid,
                bssid: mint(&mut bssid_counter),
                location: jitter(home.location, 120.0, &mut rng),
                open: rng.chance(RESIDENTIAL_OPEN_FRACTION),
                category: SsidCategory::Residential,
            });
        }

        WigleSnapshot::from_records(records)
    }

    /// All records.
    pub fn records(&self) -> &[NetworkRecord] {
        &self.records
    }

    /// Number of AP records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the snapshot has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct SSIDs.
    pub fn ssid_count(&self) -> usize {
        self.by_ssid.len()
    }

    /// How many APs advertise `ssid`.
    pub fn ap_count(&self, ssid: &Ssid) -> usize {
        self.by_ssid.get(ssid).map_or(0, Vec::len)
    }

    /// The records of one SSID.
    pub fn records_of<'a>(&'a self, ssid: &Ssid) -> impl Iterator<Item = &'a NetworkRecord> + 'a {
        self.by_ssid
            .get(ssid)
            .into_iter()
            .flatten()
            .map(move |&i| &self.records[i])
    }

    /// `true` if *any* AP of this SSID is open — the precondition for a
    /// lure on this SSID to end in an automatic association.
    pub fn is_open_ssid(&self, ssid: &Ssid) -> bool {
        self.records_of(ssid).any(|r| r.open)
    }

    /// Distinct SSIDs with their AP counts, unordered.
    pub fn ssids(&self) -> impl Iterator<Item = (&Ssid, usize)> {
        self.by_ssid.iter().map(|(s, v)| (s, v.len()))
    }

    /// The `n` SSIDs with the most APs (ties broken by name for
    /// determinism), optionally restricted to SSIDs with at least one open
    /// AP.
    pub fn top_by_ap_count(&self, n: usize, open_only: bool) -> Vec<(Ssid, usize)> {
        let mut all: Vec<(Ssid, usize)> = self
            .by_ssid
            .iter()
            .filter(|(s, _)| !open_only || self.is_open_ssid(s))
            .map(|(s, v)| (s.clone(), v.len()))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// The heat value of an SSID: the sum of the heat-map value at each of
    /// its AP locations (§IV-B).
    pub fn ssid_heat(&self, heat: &HeatMap, ssid: &Ssid) -> f64 {
        self.records_of(ssid)
            .map(|r| heat.value_at(r.location))
            .sum()
    }

    /// The `n` SSIDs with the highest heat value, open SSIDs only (the
    /// attacker cannot auto-join victims onto protected networks).
    pub fn top_by_heat(&self, heat: &HeatMap, n: usize) -> Vec<(Ssid, f64)> {
        let mut all: Vec<(Ssid, f64)> = self
            .by_ssid
            .keys()
            .filter(|s| self.is_open_ssid(s))
            .map(|s| (s.clone(), self.ssid_heat(heat, s)))
            .collect();
        all.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("heat values are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        all.truncate(n);
        all
    }

    /// Records within `radius_m` of `point`.
    pub fn nearby<'a>(
        &'a self,
        point: GeoPoint,
        radius_m: f64,
    ) -> impl Iterator<Item = &'a NetworkRecord> + 'a {
        self.records
            .iter()
            .filter(move |r| r.location.distance_to(point) <= radius_m)
    }

    /// The `n` distinct open SSIDs nearest to `point` (by their closest
    /// AP), nearest first — the "100 SSIDs near the attacking location"
    /// seed of §III-B.
    pub fn nearest_open_ssids(&self, point: GeoPoint, n: usize) -> Vec<Ssid> {
        let mut best: HashMap<&Ssid, f64> = HashMap::new();
        for r in &self.records {
            if !r.open {
                continue;
            }
            let d = r.location.distance_to(point);
            best.entry(&r.ssid)
                .and_modify(|cur| *cur = cur.min(d))
                .or_insert(d);
        }
        let mut ranked: Vec<(&Ssid, f64)> = best.into_iter().collect();
        ranked.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("distances are finite")
                .then_with(|| a.0.cmp(b.0))
        });
        ranked.into_iter().take(n).map(|(s, _)| s.clone()).collect()
    }
}

fn airport_location(city: &CityModel) -> GeoPoint {
    city.pois_of_kind(PoiKind::Airport)
        .next()
        .expect("city has an airport")
        .location
}

fn jitter(p: GeoPoint, sigma_m: f64, rng: &mut SimRng) -> GeoPoint {
    p.offset(rng.normal(0.0, sigma_m), rng.normal(0.0, sigma_m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CityModel, WigleSnapshot) {
        let mut rng = SimRng::seed_from(2);
        let city = CityModel::synthesize(&mut rng);
        let snap = WigleSnapshot::synthesize(&city, &mut rng);
        (city, snap)
    }

    #[test]
    fn synthesis_deterministic() {
        let (_, a) = setup();
        let (_, b) = setup();
        assert_eq!(a.records().len(), b.records().len());
        assert_eq!(a.records()[100], b.records()[100]);
    }

    #[test]
    fn head_counts_match_paper_quotes() {
        let (_, snap) = setup();
        assert_eq!(
            snap.ap_count(&Ssid::new("7-Eleven Free Wifi").unwrap()),
            924
        );
        assert_eq!(
            snap.ap_count(&Ssid::new("#HKAirport Free WiFi").unwrap()),
            231
        );
    }

    #[test]
    fn airport_ranks_thirteen_by_ap_count() {
        let (_, snap) = setup();
        let top = snap.top_by_ap_count(20, true);
        let rank = top
            .iter()
            .position(|(s, _)| s.as_str() == "#HKAirport Free WiFi")
            .unwrap();
        assert_eq!(rank + 1, 13, "paper: ranked 13 by AP count");
        // And the paper's Table IV head by raw count.
        assert_eq!(top[0].0.as_str(), "-Free HKBN Wi-Fi-");
        assert_eq!(top[1].0.as_str(), "7-Eleven Free Wifi");
        assert_eq!(top[2].0.as_str(), "-Circle K Free Wi-Fi-");
        assert_eq!(top[3].0.as_str(), "CSL");
        assert_eq!(top[4].0.as_str(), "CMCC-WEB");
    }

    #[test]
    fn airport_aps_cluster_at_airport() {
        let (city, snap) = setup();
        let airport = airport_location(&city);
        let ssid = Ssid::new("#HKAirport Free WiFi").unwrap();
        let mean_dist: f64 = snap
            .records_of(&ssid)
            .map(|r| r.location.distance_to(airport))
            .sum::<f64>()
            / snap.ap_count(&ssid) as f64;
        assert!(mean_dist < 1_000.0, "mean_dist={mean_dist}");
    }

    #[test]
    fn residential_mostly_protected() {
        let (_, snap) = setup();
        let homes: Vec<_> = snap
            .records()
            .iter()
            .filter(|r| r.category == SsidCategory::Residential)
            .collect();
        assert_eq!(homes.len(), RESIDENTIAL_COUNT);
        let open = homes.iter().filter(|r| r.open).count();
        let frac = open as f64 / homes.len() as f64;
        assert!((0.04..0.13).contains(&frac), "open fraction {frac}");
    }

    #[test]
    fn carrier_ssids_not_in_wigle() {
        let (_, snap) = setup();
        for carrier in carrier_ssids() {
            assert_eq!(snap.ap_count(&carrier), 0, "{carrier} must be absent");
        }
    }

    #[test]
    fn nearest_open_ssids_sorted_and_open() {
        let (city, snap) = setup();
        let here = city.pois()[3].location;
        let near = snap.nearest_open_ssids(here, 100);
        assert_eq!(near.len(), 100);
        // All returned SSIDs are open somewhere.
        for s in &near {
            assert!(snap.is_open_ssid(s), "{s}");
        }
        // Nearest-first: the first SSID's closest AP is no farther than the
        // last SSID's closest AP.
        let min_dist = |ssid: &Ssid| {
            snap.records_of(ssid)
                .filter(|r| r.open)
                .map(|r| r.location.distance_to(here))
                .fold(f64::INFINITY, f64::min)
        };
        assert!(min_dist(&near[0]) <= min_dist(&near[99]));
    }

    #[test]
    fn empty_snapshot_behaves() {
        let snap = WigleSnapshot::empty();
        assert!(snap.is_empty());
        assert_eq!(snap.ssid_count(), 0);
        assert_eq!(snap.top_by_ap_count(5, true), vec![]);
        assert_eq!(
            snap.nearest_open_ssids(GeoPoint::new(0.0, 0.0), 10),
            Vec::<Ssid>::new()
        );
    }

    #[test]
    fn is_open_ssid_mixed_records() {
        let ssid = Ssid::new("Mixed").unwrap();
        let rec = |open| NetworkRecord {
            ssid: ssid.clone(),
            bssid: MacAddr::from_index([0, 0, 1], u32::from(open)),
            location: GeoPoint::new(0.0, 0.0),
            open,
            category: SsidCategory::Chain,
        };
        let snap = WigleSnapshot::from_records(vec![rec(false), rec(true)]);
        assert!(snap.is_open_ssid(&ssid));
        let snap2 = WigleSnapshot::from_records(vec![rec(false)]);
        assert!(!snap2.is_open_ssid(&ssid));
    }
}

//! City-frame geography.

use std::fmt;

/// A point in the city frame, in metres east/north of the city origin.
///
/// The synthetic city is small enough (tens of kilometres) that a flat
/// metric frame is exact for our purposes; [`GeoPoint::to_lat_lon`] provides
/// a nominal WGS-84 view for WiGLE-style exports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GeoPoint {
    /// Metres east of the city origin.
    pub east_m: f64,
    /// Metres north of the city origin.
    pub north_m: f64,
}

/// Nominal latitude of the city origin (Hong Kong-ish), used only for the
/// cosmetic lat/lon view.
pub const ORIGIN_LAT: f64 = 22.3;
/// Nominal longitude of the city origin.
pub const ORIGIN_LON: f64 = 114.17;

const METERS_PER_DEG_LAT: f64 = 111_320.0;

impl GeoPoint {
    /// Creates a point from metric offsets.
    pub const fn new(east_m: f64, north_m: f64) -> Self {
        GeoPoint { east_m, north_m }
    }

    /// Euclidean distance in metres.
    pub fn distance_to(self, other: GeoPoint) -> f64 {
        ((self.east_m - other.east_m).powi(2) + (self.north_m - other.north_m).powi(2)).sqrt()
    }

    /// Nominal WGS-84 coordinates for WiGLE-style record exports.
    pub fn to_lat_lon(self) -> (f64, f64) {
        let lat = ORIGIN_LAT + self.north_m / METERS_PER_DEG_LAT;
        let meters_per_deg_lon = METERS_PER_DEG_LAT * ORIGIN_LAT.to_radians().cos();
        let lon = ORIGIN_LON + self.east_m / meters_per_deg_lon;
        (lat, lon)
    }

    /// The point offset by the given metres.
    pub fn offset(self, de: f64, dn: f64) -> GeoPoint {
        GeoPoint::new(self.east_m + de, self.north_m + dn)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.0}E, {:.0}N)", self.east_m, self.north_m)
    }
}

/// An axis-aligned region of the city frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoRect {
    /// South-west corner.
    pub min: GeoPoint,
    /// North-east corner.
    pub max: GeoPoint,
}

impl GeoRect {
    /// Creates a rectangle from two opposite corners (any order).
    pub fn new(a: GeoPoint, b: GeoPoint) -> Self {
        GeoRect {
            min: GeoPoint::new(a.east_m.min(b.east_m), a.north_m.min(b.north_m)),
            max: GeoPoint::new(a.east_m.max(b.east_m), a.north_m.max(b.north_m)),
        }
    }

    /// Width (east-west extent) in metres.
    pub fn width(&self) -> f64 {
        self.max.east_m - self.min.east_m
    }

    /// Height (north-south extent) in metres.
    pub fn height(&self) -> f64 {
        self.max.north_m - self.min.north_m
    }

    /// Geometric centre.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min.east_m + self.max.east_m) / 2.0,
            (self.min.north_m + self.max.north_m) / 2.0,
        )
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: GeoPoint) -> bool {
        p.east_m >= self.min.east_m
            && p.east_m <= self.max.east_m
            && p.north_m >= self.min.north_m
            && p.north_m <= self.max.north_m
    }

    /// A uniformly random point inside the rectangle.
    pub fn sample(&self, rng: &mut ch_sim::SimRng) -> GeoPoint {
        GeoPoint::new(
            rng.range_f64(self.min.east_m, self.max.east_m),
            rng.range_f64(self.min.north_m, self.max.north_m),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_sim::SimRng;

    #[test]
    fn distance_basic() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(300.0, 400.0);
        assert_eq!(a.distance_to(b), 500.0);
    }

    #[test]
    fn lat_lon_view_is_monotonic() {
        let (lat0, lon0) = GeoPoint::new(0.0, 0.0).to_lat_lon();
        let (lat1, lon1) = GeoPoint::new(1_000.0, 1_000.0).to_lat_lon();
        assert!(lat1 > lat0);
        assert!(lon1 > lon0);
        assert!((lat0 - ORIGIN_LAT).abs() < 1e-9);
        // 1 km north is about 0.009 degrees of latitude.
        assert!((lat1 - lat0 - 0.00898).abs() < 1e-4);
    }

    #[test]
    fn rect_contains_and_sample() {
        let r = GeoRect::new(GeoPoint::new(100.0, 0.0), GeoPoint::new(0.0, 200.0));
        assert_eq!(r.min, GeoPoint::new(0.0, 0.0));
        assert_eq!(r.width(), 100.0);
        assert_eq!(r.height(), 200.0);
        assert!(r.contains(r.center()));
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            assert!(r.contains(r.sample(&mut rng)));
        }
    }

    #[test]
    fn offset_moves_point() {
        let p = GeoPoint::new(10.0, 20.0).offset(-10.0, 5.0);
        assert_eq!(p, GeoPoint::new(0.0, 25.0));
    }
}

//! The synthetic city.
//!
//! A city model is a set of districts and points of interest (POIs) with
//! *footfall* weights — how many people pass through per day. Footfall
//! drives three downstream artefacts that the paper's pipeline consumes:
//! where APs are deployed ([`crate::netdb`]), where geotagged photos are
//! taken ([`crate::photos`]), and which public SSIDs end up in phones'
//! PNLs (`ch-phone`). That shared origin is what makes a heat-ranked WiGLE
//! seed predictive of PNL contents — the effect City-Hunter lives on.

use ch_sim::SimRng;

use crate::point::{GeoPoint, GeoRect};

/// What kind of place a POI is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoiKind {
    /// The city airport — few APs, enormous footfall (the
    /// '#HKAirport Free WiFi' effect of §IV-B).
    Airport,
    /// A main-line railway station.
    RailwayStation,
    /// A subway/metro station.
    SubwayStation,
    /// A large shopping mall.
    Mall,
    /// A canteen / food court.
    Canteen,
    /// A convenience-store branch (the '7-Eleven' pattern).
    ConvenienceStore,
    /// A coffee-shop branch (the 'Starbucks' pattern).
    CoffeeShop,
    /// An office block.
    OfficeBlock,
    /// A residential block.
    ResidentialBlock,
}

impl PoiKind {
    /// All kinds, in synthesis order.
    pub const ALL: [PoiKind; 9] = [
        PoiKind::Airport,
        PoiKind::RailwayStation,
        PoiKind::SubwayStation,
        PoiKind::Mall,
        PoiKind::Canteen,
        PoiKind::ConvenienceStore,
        PoiKind::CoffeeShop,
        PoiKind::OfficeBlock,
        PoiKind::ResidentialBlock,
    ];
}

/// A point of interest.
#[derive(Debug, Clone, PartialEq)]
pub struct Poi {
    /// Human-readable name.
    pub name: String,
    /// Kind of place.
    pub kind: PoiKind,
    /// Location in the city frame.
    pub location: GeoPoint,
    /// Relative daily visitor weight (dimensionless).
    pub footfall: f64,
}

/// A named district of the city.
#[derive(Debug, Clone, PartialEq)]
pub struct District {
    /// District name.
    pub name: String,
    /// Footprint.
    pub area: GeoRect,
    /// Relative residential density (homes per unit area).
    pub residential_density: f64,
}

/// The whole synthetic city.
#[derive(Debug, Clone, PartialEq)]
pub struct CityModel {
    extent: GeoRect,
    districts: Vec<District>,
    pois: Vec<Poi>,
}

/// Counts of each POI kind synthesized into the default city.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoiCensus {
    /// Airports.
    pub airports: usize,
    /// Railway stations.
    pub railway_stations: usize,
    /// Subway stations.
    pub subway_stations: usize,
    /// Malls.
    pub malls: usize,
    /// Canteens.
    pub canteens: usize,
    /// Convenience stores.
    pub convenience_stores: usize,
    /// Coffee shops.
    pub coffee_shops: usize,
    /// Office blocks.
    pub office_blocks: usize,
    /// Residential blocks.
    pub residential_blocks: usize,
}

impl Default for PoiCensus {
    fn default() -> Self {
        PoiCensus {
            airports: 1,
            railway_stations: 2,
            subway_stations: 14,
            malls: 8,
            canteens: 30,
            convenience_stores: 110,
            coffee_shops: 55,
            office_blocks: 60,
            residential_blocks: 160,
        }
    }
}

const DISTRICT_NAMES: [&str; 6] = [
    "Kowloon",
    "Lantao Island",
    "Central",
    "Wan Chai",
    "Sha Tin",
    "Tsuen Wan",
];

impl CityModel {
    /// Synthesizes the default 18 km × 12 km city.
    pub fn synthesize(rng: &mut SimRng) -> Self {
        CityModel::synthesize_with(rng, PoiCensus::default())
    }

    /// Synthesizes a city with an explicit POI census.
    pub fn synthesize_with(rng: &mut SimRng, census: PoiCensus) -> Self {
        let mut rng = rng.fork("city");
        let extent = GeoRect::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(18_000.0, 12_000.0));

        // Six districts in a 3 × 2 grid.
        let dw = extent.width() / 3.0;
        let dh = extent.height() / 2.0;
        let districts: Vec<District> = DISTRICT_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let col = (i % 3) as f64;
                let row = (i / 3) as f64;
                District {
                    name: (*name).to_owned(),
                    area: GeoRect::new(
                        GeoPoint::new(col * dw, row * dh),
                        GeoPoint::new((col + 1.0) * dw, (row + 1.0) * dh),
                    ),
                    residential_density: rng.range_f64(0.4, 1.0),
                }
            })
            .collect();

        let mut pois = Vec::new();
        let push = |pois: &mut Vec<Poi>,
                    rng: &mut SimRng,
                    kind: PoiKind,
                    count: usize,
                    base_footfall: f64,
                    spread: f64| {
            for i in 0..count {
                let location = extent.sample(rng);
                let footfall = base_footfall * rng.log_normal(0.0, spread);
                pois.push(Poi {
                    name: poi_name(kind, i),
                    kind,
                    location,
                    footfall,
                });
            }
        };

        push(
            &mut pois,
            &mut rng,
            PoiKind::Airport,
            census.airports,
            60_000.0,
            0.1,
        );
        push(
            &mut pois,
            &mut rng,
            PoiKind::RailwayStation,
            census.railway_stations,
            35_000.0,
            0.2,
        );
        push(
            &mut pois,
            &mut rng,
            PoiKind::SubwayStation,
            census.subway_stations,
            15_000.0,
            0.4,
        );
        push(
            &mut pois,
            &mut rng,
            PoiKind::Mall,
            census.malls,
            20_000.0,
            0.4,
        );
        push(
            &mut pois,
            &mut rng,
            PoiKind::Canteen,
            census.canteens,
            3_000.0,
            0.5,
        );
        push(
            &mut pois,
            &mut rng,
            PoiKind::ConvenienceStore,
            census.convenience_stores,
            1_200.0,
            0.5,
        );
        push(
            &mut pois,
            &mut rng,
            PoiKind::CoffeeShop,
            census.coffee_shops,
            1_000.0,
            0.5,
        );
        push(
            &mut pois,
            &mut rng,
            PoiKind::OfficeBlock,
            census.office_blocks,
            2_500.0,
            0.6,
        );
        push(
            &mut pois,
            &mut rng,
            PoiKind::ResidentialBlock,
            census.residential_blocks,
            800.0,
            0.6,
        );

        CityModel {
            extent,
            districts,
            pois,
        }
    }

    /// The city's bounding rectangle.
    pub fn extent(&self) -> GeoRect {
        self.extent
    }

    /// All districts.
    pub fn districts(&self) -> &[District] {
        &self.districts
    }

    /// All POIs.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// The district a point falls into, if any.
    pub fn district_of(&self, p: GeoPoint) -> Option<&District> {
        self.districts.iter().find(|d| d.area.contains(p))
    }

    /// POIs of one kind.
    pub fn pois_of_kind(&self, kind: PoiKind) -> impl Iterator<Item = &Poi> {
        self.pois.iter().filter(move |p| p.kind == kind)
    }

    /// Sum of footfall across all POIs.
    pub fn total_footfall(&self) -> f64 {
        self.pois.iter().map(|p| p.footfall).sum()
    }

    /// Draws a POI with probability proportional to footfall — the
    /// "places people actually go" distribution used by both the photo
    /// generator and the PNL generator.
    pub fn sample_poi_by_footfall(&self, rng: &mut SimRng) -> &Poi {
        let weights: Vec<f64> = self.pois.iter().map(|p| p.footfall).collect();
        let idx = rng
            .weighted_index(&weights)
            .expect("city always has POIs with positive footfall");
        &self.pois[idx]
    }

    /// The POI closest to `p`.
    pub fn nearest_poi(&self, p: GeoPoint) -> Option<&Poi> {
        self.pois.iter().min_by(|a, b| {
            a.location
                .distance_to(p)
                .partial_cmp(&b.location.distance_to(p))
                .expect("distances are finite")
        })
    }
}

fn poi_name(kind: PoiKind, index: usize) -> String {
    match kind {
        PoiKind::Airport => "HK Airport".to_owned(),
        PoiKind::RailwayStation => format!("Railway Station {}", index + 1),
        PoiKind::SubwayStation => format!("Subway Station {}", index + 1),
        PoiKind::Mall => {
            const MALLS: [&str; 8] = [
                "iSQUARE",
                "the ONE",
                "Harbour Plaza",
                "Festival Mall",
                "Ocean Galleria",
                "Victoria Centre",
                "Dragon Arcade",
                "Pearl Exchange",
            ];
            MALLS
                .get(index)
                .map(|s| (*s).to_owned())
                .unwrap_or_else(|| format!("Mall {}", index + 1))
        }
        PoiKind::Canteen => format!("Canteen {}", index + 1),
        PoiKind::ConvenienceStore => format!("Convenience Store {}", index + 1),
        PoiKind::CoffeeShop => format!("Coffee Shop {}", index + 1),
        PoiKind::OfficeBlock => format!("Office Block {}", index + 1),
        PoiKind::ResidentialBlock => format!("Residential Block {}", index + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn city() -> CityModel {
        let mut rng = SimRng::seed_from(1);
        CityModel::synthesize(&mut rng)
    }

    #[test]
    fn synthesis_is_deterministic() {
        let mut r1 = SimRng::seed_from(5);
        let mut r2 = SimRng::seed_from(5);
        assert_eq!(
            CityModel::synthesize(&mut r1),
            CityModel::synthesize(&mut r2)
        );
    }

    #[test]
    fn census_counts_respected() {
        let c = city();
        let census = PoiCensus::default();
        assert_eq!(c.pois_of_kind(PoiKind::Airport).count(), census.airports);
        assert_eq!(c.pois_of_kind(PoiKind::Mall).count(), census.malls);
        assert_eq!(
            c.pois_of_kind(PoiKind::ConvenienceStore).count(),
            census.convenience_stores
        );
        assert_eq!(
            c.pois().len(),
            census.airports
                + census.railway_stations
                + census.subway_stations
                + census.malls
                + census.canteens
                + census.convenience_stores
                + census.coffee_shops
                + census.office_blocks
                + census.residential_blocks
        );
    }

    #[test]
    fn all_pois_inside_extent() {
        let c = city();
        for poi in c.pois() {
            assert!(c.extent().contains(poi.location), "{}", poi.name);
        }
    }

    #[test]
    fn districts_tile_the_extent() {
        let c = city();
        assert_eq!(c.districts().len(), 6);
        // Every POI belongs to exactly one district (grid tiling; boundary
        // double-counting tolerated as "at least one").
        for poi in c.pois() {
            assert!(c.district_of(poi.location).is_some(), "{}", poi.name);
        }
    }

    #[test]
    fn airport_outweighs_typical_shop() {
        let c = city();
        let airport = c.pois_of_kind(PoiKind::Airport).next().unwrap();
        let mean_shop: f64 = {
            let shops: Vec<_> = c.pois_of_kind(PoiKind::ConvenienceStore).collect();
            shops.iter().map(|p| p.footfall).sum::<f64>() / shops.len() as f64
        };
        assert!(
            airport.footfall > 10.0 * mean_shop,
            "airport {} vs shop mean {mean_shop}",
            airport.footfall
        );
    }

    #[test]
    fn footfall_sampling_prefers_big_pois() {
        let c = city();
        let mut rng = SimRng::seed_from(9);
        let mut airport_hits = 0;
        let n = 5_000;
        for _ in 0..n {
            if c.sample_poi_by_footfall(&mut rng).kind == PoiKind::Airport {
                airport_hits += 1;
            }
        }
        let share = airport_hits as f64 / n as f64;
        let expected =
            c.pois_of_kind(PoiKind::Airport).next().unwrap().footfall / c.total_footfall();
        assert!(
            (share - expected).abs() < 0.03,
            "share={share} expected={expected}"
        );
    }

    #[test]
    fn nearest_poi_finds_itself() {
        let c = city();
        let target = &c.pois()[17];
        assert_eq!(c.nearest_poi(target.location).unwrap().name, target.name);
    }

    #[test]
    fn fork_isolation_from_parent_rng_use() {
        // Consuming draws from the parent before synthesis must not change
        // the city (synthesize forks off the parent's seed).
        let mut r1 = SimRng::seed_from(8);
        let c1 = CityModel::synthesize(&mut r1);
        let mut r2 = SimRng::seed_from(8);
        let _ = r2.next_u64();
        let c2 = CityModel::synthesize(&mut r2);
        assert_eq!(c1, c2);
    }
}

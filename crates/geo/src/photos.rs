//! Synthetic geotagged photos.
//!
//! §IV-B estimates crowd density from the number of geotagged photos posted
//! in each area ("we assume that the number of photos of an area posted
//! roughly reflects the number of people there"). This module generates
//! that proxy: photos are taken at POIs with probability proportional to
//! footfall, jittered around the POI, plus a uniform "street noise" floor.
//! The heat map in [`crate::heat`] then consumes only the photo locations —
//! the same pipeline the paper runs on Instagram data.

use ch_sim::SimRng;

use crate::city::CityModel;
use crate::point::GeoPoint;

/// Fraction of photos that are uniform street noise rather than POI-bound.
const NOISE_FRACTION: f64 = 0.15;

/// Standard deviation of the jitter around a POI, in metres.
const POI_JITTER_M: f64 = 90.0;

/// A synthetic geotagged-photo collection.
#[derive(Debug, Clone, PartialEq)]
pub struct PhotoCollection {
    photos: Vec<GeoPoint>,
}

impl PhotoCollection {
    /// Generates `count` photos over the city.
    pub fn synthesize(city: &CityModel, count: usize, rng: &mut SimRng) -> Self {
        let mut rng = rng.fork("photos");
        let mut photos = Vec::with_capacity(count);
        for _ in 0..count {
            let p = if rng.chance(NOISE_FRACTION) {
                city.extent().sample(&mut rng)
            } else {
                let poi = city.sample_poi_by_footfall(&mut rng);
                poi.location
                    .offset(rng.normal(0.0, POI_JITTER_M), rng.normal(0.0, POI_JITTER_M))
            };
            photos.push(p);
        }
        PhotoCollection { photos }
    }

    /// Builds a collection from explicit points (tests).
    pub fn from_points(photos: Vec<GeoPoint>) -> Self {
        PhotoCollection { photos }
    }

    /// The photo locations.
    pub fn photos(&self) -> &[GeoPoint] {
        &self.photos
    }

    /// Number of photos.
    pub fn len(&self) -> usize {
        self.photos.len()
    }

    /// `true` if the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.photos.is_empty()
    }

    /// Photos within `radius_m` of `point`.
    pub fn count_near(&self, point: GeoPoint, radius_m: f64) -> usize {
        self.photos
            .iter()
            .filter(|p| p.distance_to(point) <= radius_m)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::PoiKind;

    fn setup() -> (CityModel, PhotoCollection) {
        let mut rng = SimRng::seed_from(4);
        let city = CityModel::synthesize(&mut rng);
        let photos = PhotoCollection::synthesize(&city, 30_000, &mut rng);
        (city, photos)
    }

    #[test]
    fn count_requested() {
        let (_, photos) = setup();
        assert_eq!(photos.len(), 30_000);
        assert!(!photos.is_empty());
    }

    #[test]
    fn deterministic() {
        let (_, a) = setup();
        let (_, b) = setup();
        assert_eq!(a, b);
    }

    #[test]
    fn photos_cluster_at_high_footfall_pois() {
        let (city, photos) = setup();
        let airport = city.pois_of_kind(PoiKind::Airport).next().unwrap();
        let lowest_home = city
            .pois_of_kind(PoiKind::ResidentialBlock)
            .min_by(|a, b| a.footfall.partial_cmp(&b.footfall).unwrap())
            .unwrap();
        let near_airport = photos.count_near(airport.location, 300.0);
        let near_home = photos.count_near(lowest_home.location, 300.0);
        assert!(
            near_airport > 5 * (near_home + 1),
            "airport {near_airport} vs home {near_home}"
        );
    }

    #[test]
    fn count_near_radius_zero() {
        let photos = PhotoCollection::from_points(vec![GeoPoint::new(5.0, 5.0)]);
        assert_eq!(photos.count_near(GeoPoint::new(5.0, 5.0), 0.0), 1);
        assert_eq!(photos.count_near(GeoPoint::new(6.0, 5.0), 0.5), 0);
    }
}

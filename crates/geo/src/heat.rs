//! The city heat map (§IV-B, Fig. 4).
//!
//! Photos are binned into a regular grid over the city extent; the value of
//! a cell is its photo count. The per-SSID heat value — the quantity the
//! paper actually ranks SSIDs by — is the sum of the cell values at each of
//! the SSID's AP locations, computed by
//! [`crate::netdb::WigleSnapshot::ssid_heat`].

use crate::city::CityModel;
use crate::photos::PhotoCollection;
use crate::point::{GeoPoint, GeoRect};

/// A regular-grid heat map of photo density.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatMap {
    extent: GeoRect,
    cell_m: f64,
    cols: usize,
    rows: usize,
    cells: Vec<u32>,
}

impl HeatMap {
    /// Bins `photos` into cells of `cell_m` metres over the city extent.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not strictly positive.
    pub fn from_photos(city: &CityModel, photos: &PhotoCollection, cell_m: f64) -> Self {
        assert!(cell_m > 0.0, "cell size must be positive");
        let extent = city.extent();
        let cols = (extent.width() / cell_m).ceil() as usize;
        let rows = (extent.height() / cell_m).ceil() as usize;
        let mut cells = vec![0u32; cols * rows];
        let mut outside = 0u32;
        for &p in photos.photos() {
            match cell_index(extent, cell_m, cols, rows, p) {
                Some(i) => cells[i] += 1,
                None => outside += 1,
            }
        }
        // Jittered photos can stray slightly outside the extent; that's
        // expected, but losing a large share would bias the map.
        debug_assert!(
            (outside as usize) < photos.len() / 4,
            "{outside} of {} photos fell outside the extent",
            photos.len()
        );
        HeatMap {
            extent,
            cell_m,
            cols,
            rows,
            cells,
        }
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Cell size in metres.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// The heat value at a point (0 outside the extent).
    pub fn value_at(&self, p: GeoPoint) -> f64 {
        cell_index(self.extent, self.cell_m, self.cols, self.rows, p)
            .map_or(0.0, |i| self.cells[i] as f64)
    }

    /// Raw cell value by grid coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `col`/`row` are out of bounds.
    pub fn cell(&self, col: usize, row: usize) -> u32 {
        assert!(col < self.cols && row < self.rows, "cell out of bounds");
        self.cells[row * self.cols + col]
    }

    /// Total photo mass captured by the map.
    pub fn total_mass(&self) -> u64 {
        self.cells.iter().map(|&c| c as u64).sum()
    }

    /// The maximum cell value.
    pub fn max_cell(&self) -> u32 {
        self.cells.iter().copied().max().unwrap_or(0)
    }

    /// The heat values of all cells inside `region`, row-major — used to
    /// render the Fig. 4 district panels.
    pub fn region_cells(&self, region: GeoRect) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut row_start = region.min.north_m + self.cell_m / 2.0;
        while row_start < region.max.north_m {
            let mut row = Vec::new();
            let mut col_start = region.min.east_m + self.cell_m / 2.0;
            while col_start < region.max.east_m {
                row.push(self.value_at(GeoPoint::new(col_start, row_start)) as u32);
                col_start += self.cell_m;
            }
            out.push(row);
            row_start += self.cell_m;
        }
        out
    }

    /// Renders `region` as an ASCII density panel (north at the top) with
    /// the given downsampling factor; the Fig. 4 stand-in.
    pub fn render_ascii(&self, region: GeoRect, downsample: usize) -> String {
        const SHADES: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let cells = self.region_cells(region);
        let ds = downsample.max(1);
        let max = cells.iter().flatten().copied().max().unwrap_or(0).max(1) as f64;
        let mut out = String::new();
        for chunk in cells.rchunks(ds) {
            for col in (0..chunk[0].len()).step_by(ds) {
                let mut acc = 0u64;
                let mut n = 0u64;
                for row in chunk {
                    for c in row.iter().skip(col).take(ds) {
                        acc += *c as u64;
                        n += 1;
                    }
                }
                let mean = acc as f64 / n.max(1) as f64;
                // Log-ish scaling so sparse street noise stays visible.
                let t = (mean / max).sqrt();
                let idx = ((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                out.push(SHADES[idx]);
            }
            out.push('\n');
        }
        out
    }
}

fn cell_index(
    extent: GeoRect,
    cell_m: f64,
    cols: usize,
    rows: usize,
    p: GeoPoint,
) -> Option<usize> {
    if !extent.contains(p) {
        return None;
    }
    let col = (((p.east_m - extent.min.east_m) / cell_m) as usize).min(cols - 1);
    let row = (((p.north_m - extent.min.north_m) / cell_m) as usize).min(rows - 1);
    Some(row * cols + col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::PoiKind;
    use ch_sim::SimRng;

    fn setup() -> (CityModel, HeatMap, PhotoCollection) {
        let mut rng = SimRng::seed_from(6);
        let city = CityModel::synthesize(&mut rng);
        let photos = PhotoCollection::synthesize(&city, 25_000, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 100.0);
        (city, heat, photos)
    }

    #[test]
    fn grid_dimensions() {
        let (city, heat, _) = setup();
        let (cols, rows) = heat.dims();
        assert_eq!(cols, (city.extent().width() / 100.0).ceil() as usize);
        assert_eq!(rows, (city.extent().height() / 100.0).ceil() as usize);
    }

    #[test]
    fn mass_conservation_within_extent() {
        let (city, heat, photos) = setup();
        let inside = photos
            .photos()
            .iter()
            .filter(|p| city.extent().contains(**p))
            .count() as u64;
        assert_eq!(heat.total_mass(), inside);
    }

    #[test]
    fn airport_is_hot() {
        let (city, heat, _) = setup();
        let airport = city.pois_of_kind(PoiKind::Airport).next().unwrap();
        let hot = heat.value_at(airport.location);
        // Median cell is near zero; the airport cell must be far above it.
        assert!(hot > 50.0, "airport heat {hot}");
        assert!(hot <= heat.max_cell() as f64);
    }

    #[test]
    fn outside_extent_is_zero() {
        let (_, heat, _) = setup();
        assert_eq!(heat.value_at(GeoPoint::new(-10.0, -10.0)), 0.0);
        assert_eq!(heat.value_at(GeoPoint::new(1e6, 1e6)), 0.0);
    }

    #[test]
    fn region_render_has_expected_shape() {
        let (city, heat, _) = setup();
        let district = &city.districts()[0];
        let panel = heat.render_ascii(district.area, 2);
        let lines: Vec<&str> = panel.lines().collect();
        assert!(!lines.is_empty());
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
        // The panel must show some texture (not all blank, not all full).
        let blanks = panel.chars().filter(|&c| c == ' ').count();
        let marks = panel.chars().filter(|&c| c != ' ' && c != '\n').count();
        assert!(blanks > 0 && marks > 0, "blanks={blanks} marks={marks}");
    }

    #[test]
    fn cell_lookup_matches_value_at() {
        let (city, heat, _) = setup();
        let p = GeoPoint::new(150.0, 250.0);
        let col = (p.east_m / 100.0) as usize;
        let row = (p.north_m / 100.0) as usize;
        assert_eq!(heat.cell(col, row) as f64, heat.value_at(p));
        let _ = city;
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_panics() {
        let mut rng = SimRng::seed_from(1);
        let city = CityModel::synthesize(&mut rng);
        let photos = PhotoCollection::from_points(vec![]);
        let _ = HeatMap::from_photos(&city, &photos, 0.0);
    }

    #[test]
    #[should_panic(expected = "cell out of bounds")]
    fn cell_out_of_bounds_panics() {
        let (_, heat, _) = setup();
        let (cols, rows) = heat.dims();
        let _ = heat.cell(cols, rows);
    }
}

impl HeatMap {
    /// Exports the grid as CSV (row-major, north at the bottom row 0) for
    /// plotting in external tools — the machine-readable twin of
    /// [`HeatMap::render_ascii`].
    pub fn to_csv_grid(&self) -> String {
        let mut out = String::with_capacity(self.cols * self.rows * 4);
        for row in 0..self.rows {
            for col in 0..self.cols {
                if col > 0 {
                    out.push(',');
                }
                out.push_str(&self.cells[row * self.cols + col].to_string());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;
    use crate::city::CityModel;
    use crate::photos::PhotoCollection;
    use ch_sim::SimRng;

    #[test]
    fn csv_grid_shape_and_mass() {
        let mut rng = SimRng::seed_from(31);
        let city = CityModel::synthesize(&mut rng);
        let photos = PhotoCollection::synthesize(&city, 5_000, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 200.0);
        let csv = heat.to_csv_grid();
        let (cols, rows) = heat.dims();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), rows);
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
        let mass: u64 = csv
            .lines()
            .flat_map(|l| l.split(','))
            .map(|v| v.parse::<u64>().expect("cells are integers"))
            .sum();
        assert_eq!(mass, heat.total_mass());
    }
}

//! Rank-order weight assignment (§IV-B).
//!
//! Having ranked SSIDs by heat value, the paper assigns weights "using the
//! ratio method proposed in \[Barron & Barrett 1996\]": with `k` ranked
//! items, the top item gets weight `k` and the bottom item weight 1 —
//! i.e. linear rank weights. The alternatives from the same literature
//! (rank-sum normalized, rank-reciprocal, rank-order-centroid) are provided
//! for the ablation bench, which asks whether the exact weighting scheme
//! matters.

/// How rank positions are converted to weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankWeighting {
    /// Linear: rank `r` of `k` gets weight `k - r + 1` (the paper's
    /// choice: top = `k` … bottom = `1`).
    Linear,
    /// Rank reciprocal: weight `1 / r`, scaled so the bottom weight is 1.
    Reciprocal,
    /// Rank-order centroid: weight `Σ_{i=r..k} 1/i`, scaled so the bottom
    /// weight is 1.
    Centroid,
}

/// Weights for `k` ranked items, best first.
///
/// ```
/// use ch_geo::weights::{rank_weights, RankWeighting};
/// let w = rank_weights(200, RankWeighting::Linear);
/// assert_eq!(w[0], 200.0);   // top SSID gets weight 200
/// assert_eq!(w[199], 1.0);   // bottom gets 1 (§IV-B)
/// ```
pub fn rank_weights(k: usize, scheme: RankWeighting) -> Vec<f64> {
    match scheme {
        RankWeighting::Linear => (0..k).map(|r| (k - r) as f64).collect(),
        RankWeighting::Reciprocal => {
            // 1/r scaled by k so the bottom item gets exactly 1.
            (0..k).map(|r| k as f64 / (r + 1) as f64).collect()
        }
        RankWeighting::Centroid => {
            // Suffix harmonic sums, scaled so the bottom item gets 1.
            let mut suffix = vec![0.0; k];
            let mut acc = 0.0;
            for r in (0..k).rev() {
                acc += 1.0 / (r + 1) as f64;
                suffix[r] = acc;
            }
            let bottom = suffix.last().copied().unwrap_or(1.0);
            suffix.iter().map(|w| w / bottom).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_paper_endpoints() {
        let w = rank_weights(200, RankWeighting::Linear);
        assert_eq!(w.len(), 200);
        assert_eq!(w[0], 200.0);
        assert_eq!(w[199], 1.0);
        let w100 = rank_weights(100, RankWeighting::Linear);
        assert_eq!(w100[0], 100.0);
        assert_eq!(w100[99], 1.0);
    }

    #[test]
    fn all_schemes_strictly_decreasing_and_positive() {
        for scheme in [
            RankWeighting::Linear,
            RankWeighting::Reciprocal,
            RankWeighting::Centroid,
        ] {
            let w = rank_weights(50, scheme);
            assert_eq!(w.len(), 50);
            for pair in w.windows(2) {
                assert!(pair[0] > pair[1], "{scheme:?}: {pair:?}");
            }
            assert!(w.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn bottom_weight_is_one() {
        for scheme in [
            RankWeighting::Linear,
            RankWeighting::Reciprocal,
            RankWeighting::Centroid,
        ] {
            let w = rank_weights(37, scheme);
            assert!(
                (w.last().unwrap() - 1.0).abs() < 1e-12,
                "{scheme:?}: bottom = {}",
                w.last().unwrap()
            );
        }
    }

    #[test]
    fn empty_and_singleton() {
        for scheme in [
            RankWeighting::Linear,
            RankWeighting::Reciprocal,
            RankWeighting::Centroid,
        ] {
            assert!(rank_weights(0, scheme).is_empty());
            let one = rank_weights(1, scheme);
            assert_eq!(one.len(), 1);
            assert!((one[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reciprocal_is_steeper_than_linear() {
        let lin = rank_weights(100, RankWeighting::Linear);
        let rec = rank_weights(100, RankWeighting::Reciprocal);
        // Ratio between top and 10th weight is larger for reciprocal.
        assert!(rec[0] / rec[9] > lin[0] / lin[9]);
    }
}

//! [`EpochSet`]: an O(1) seen-set over small dense indices.
//!
//! The lure buffers dedup SSIDs while assembling a response burst. With
//! interned `SsidId`s the candidates are small dense integers, so
//! membership can be an epoch-stamped array instead of a hash set or the
//! old O(budget²) `Vec::contains` scan: `stamps[i] == epoch` means "index
//! `i` was inserted this round", and clearing the set for the next probe is
//! a single epoch bump — no memset, no allocation, no rehash.

/// An epoch-stamped membership set for indices `0..n`.
///
/// `insert`/`contains` are O(1); [`EpochSet::begin`] resets the set in O(1)
/// by advancing the epoch. The stamp table grows lazily to the largest
/// index ever inserted and is then reused forever, so steady-state use is
/// allocation-free.
///
/// ```
/// use ch_arc::EpochSet;
///
/// let mut seen = EpochSet::new();
/// assert!(seen.insert(3));
/// assert!(!seen.insert(3)); // duplicate
/// assert!(seen.contains(3));
/// seen.begin(); // O(1) clear
/// assert!(!seen.contains(3));
/// ```
#[derive(Debug, Clone)]
pub struct EpochSet {
    stamps: Vec<u32>,
    // Always >= 1; stamp 0 means "never inserted".
    epoch: u32,
}

impl Default for EpochSet {
    fn default() -> Self {
        EpochSet::new()
    }
}

impl EpochSet {
    /// An empty set. The stamp table grows on first use.
    pub fn new() -> Self {
        EpochSet {
            stamps: Vec::new(),
            epoch: 1,
        }
    }

    /// A set pre-sized for indices `0..capacity`, so even the first round
    /// is allocation-free.
    pub fn with_capacity(capacity: usize) -> Self {
        EpochSet {
            stamps: vec![0; capacity],
            epoch: 1,
        }
    }

    /// Starts a fresh round, forgetting all members in O(1).
    pub fn begin(&mut self) {
        // Stamp 0 marks "never inserted"; on the (astronomically rare) u32
        // wrap, fall back to an explicit wipe so stale stamps can't alias.
        match self.epoch.checked_add(1) {
            Some(next) => self.epoch = next,
            None => {
                self.stamps.fill(0);
                self.epoch = 1;
            }
        }
    }

    /// Inserts `index`, returning `true` if it was not yet a member this
    /// round. Grows the stamp table if `index` is beyond it.
    pub fn insert(&mut self, index: usize) -> bool {
        if index >= self.stamps.len() {
            self.stamps.resize(index + 1, 0);
        }
        if self.stamps[index] == self.epoch {
            return false;
        }
        self.stamps[index] = self.epoch;
        true
    }

    /// `true` if `index` was inserted since the last [`EpochSet::begin`].
    pub fn contains(&self, index: usize) -> bool {
        self.stamps.get(index).copied() == Some(self.epoch)
    }

    /// Capacity of the stamp table (largest index ever inserted, plus one).
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_duplicates() {
        let mut s = EpochSet::new();
        assert!(s.insert(0));
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(0));
        assert!(s.contains(7));
        assert!(!s.contains(1));
        assert!(!s.contains(1000));
    }

    #[test]
    fn begin_clears_in_o1() {
        let mut s = EpochSet::with_capacity(16);
        for i in 0..16 {
            assert!(s.insert(i));
        }
        s.begin();
        for i in 0..16 {
            assert!(!s.contains(i));
            assert!(s.insert(i));
        }
    }

    #[test]
    fn fresh_set_is_empty() {
        let s = EpochSet::with_capacity(4);
        assert!(!s.contains(0));
        assert!(!s.contains(3));
        assert_eq!(s.capacity(), 4);
    }

    #[test]
    fn grows_to_largest_index() {
        let mut s = EpochSet::new();
        assert!(s.insert(100));
        assert!(s.capacity() >= 101);
        assert!(s.contains(100));
        assert!(!s.contains(99));
    }

    #[test]
    fn epoch_wrap_wipes_stamps() {
        let mut s = EpochSet::with_capacity(2);
        s.epoch = u32::MAX;
        s.insert(0);
        assert!(s.contains(0));
        s.begin(); // wraps: wipe + epoch 1
        assert!(!s.contains(0));
        assert!(!s.contains(1));
        assert!(s.insert(0));
        assert!(s.contains(0));
    }

    #[test]
    fn rounds_across_the_wrap_stay_isolated() {
        // A long fault sweep reuses one scratch set for millions of
        // rounds; membership must stay per-round through the wrap. Start
        // a few epochs shy of u32::MAX and run enough rounds to cross it.
        let mut s = EpochSet::with_capacity(8);
        s.epoch = u32::MAX - 3;
        for round in 0..8usize {
            // Members of this round only: `round` and `round + 1`.
            assert!(s.insert(round % 8));
            assert!(s.insert((round + 1) % 8));
            assert!(!s.insert(round % 8), "duplicate accepted in round {round}");
            for i in 0..8 {
                let expected = i == round % 8 || i == (round + 1) % 8;
                assert_eq!(s.contains(i), expected, "round {round}, index {i}");
            }
            s.begin();
        }
    }

    #[test]
    fn stale_stamps_never_alias_after_wrap() {
        // The dangerous case: a stamp written at some old epoch must not
        // read as a member once the counter wraps back past that value.
        let mut s = EpochSet::with_capacity(4);
        s.insert(2); // stamped at epoch 1
        s.epoch = u32::MAX;
        assert!(!s.contains(2), "old stamp visible at u32::MAX");
        s.begin(); // wrap: wipe + epoch 1 — the stamp-1 value is gone
        assert!(!s.contains(2), "stale stamp aliased the post-wrap epoch");
        assert!(s.insert(2));
        s.begin();
        assert!(!s.contains(2));
    }

    #[test]
    fn capacity_survives_wrap_and_reuse() {
        // The wipe path must not shrink or reallocate the stamp table —
        // that would break the steady-state allocation-free property.
        let mut s = EpochSet::with_capacity(16);
        let before = s.capacity();
        s.epoch = u32::MAX;
        s.begin();
        assert_eq!(s.capacity(), before);
        for i in 0..16 {
            assert!(s.insert(i));
        }
        assert_eq!(s.capacity(), before);
    }
}

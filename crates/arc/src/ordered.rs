//! An insertion-ordered set with O(log n) LRU operations.
//!
//! Backs the T/B lists of [`crate::ArcCache`] and the [`crate::LruCache`]:
//! a `HashMap` from key to a monotonically increasing sequence number plus
//! a `BTreeMap` from sequence number back to key. "Most recently used" is
//! the largest sequence number.

use std::collections::BTreeMap;

use ch_sim::DetHashMap;
use std::hash::Hash;

#[derive(Debug, Clone)]
pub(crate) struct OrderedSet<K> {
    seq_of: DetHashMap<K, u64>,
    key_of: BTreeMap<u64, K>,
    next_seq: u64,
}

impl<K: Eq + Hash + Clone> OrderedSet<K> {
    pub(crate) fn new() -> Self {
        OrderedSet {
            seq_of: ch_sim::det_hash_map(),
            key_of: BTreeMap::new(),
            next_seq: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.seq_of.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.seq_of.is_empty()
    }

    pub(crate) fn contains(&self, key: &K) -> bool {
        self.seq_of.contains_key(key)
    }

    /// Inserts (or refreshes) `key` at the MRU end.
    pub(crate) fn push_mru(&mut self, key: K) {
        if let Some(old) = self.seq_of.remove(&key) {
            self.key_of.remove(&old);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seq_of.insert(key.clone(), seq);
        self.key_of.insert(seq, key);
    }

    /// Removes and returns the LRU key.
    pub(crate) fn pop_lru(&mut self) -> Option<K> {
        let (_, key) = self.key_of.pop_first()?;
        self.seq_of.remove(&key);
        Some(key)
    }

    /// Removes `key` if present; returns whether it was there.
    pub(crate) fn remove(&mut self, key: &K) -> bool {
        match self.seq_of.remove(key) {
            Some(seq) => {
                self.key_of.remove(&seq);
                true
            }
            None => false,
        }
    }

    /// Keys from LRU to MRU.
    pub(crate) fn iter_lru_to_mru(&self) -> impl Iterator<Item = &K> {
        self.key_of.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order() {
        let mut s = OrderedSet::new();
        s.push_mru(1);
        s.push_mru(2);
        s.push_mru(3);
        assert_eq!(s.pop_lru(), Some(1));
        assert_eq!(s.pop_lru(), Some(2));
        assert_eq!(s.pop_lru(), Some(3));
        assert_eq!(s.pop_lru(), None);
    }

    #[test]
    fn refresh_moves_to_mru() {
        let mut s = OrderedSet::new();
        s.push_mru('a');
        s.push_mru('b');
        s.push_mru('a'); // refresh
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop_lru(), Some('b'));
        assert_eq!(s.pop_lru(), Some('a'));
    }

    #[test]
    fn remove_and_contains() {
        let mut s = OrderedSet::new();
        s.push_mru("x");
        assert!(s.contains(&"x"));
        assert!(s.remove(&"x"));
        assert!(!s.remove(&"x"));
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_order() {
        let mut s = OrderedSet::new();
        for k in [5, 3, 9] {
            s.push_mru(k);
        }
        let order: Vec<_> = s.iter_lru_to_mru().copied().collect();
        assert_eq!(order, vec![5, 3, 9]);
    }
}

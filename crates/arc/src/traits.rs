//! The common cache interface.

use std::hash::Hash;

/// A fixed-capacity cache of keys.
///
/// The interface is request-driven: [`Cache::request`] both *queries* and
/// *updates* the cache (on a miss the key is admitted, possibly evicting),
/// matching the access pattern of cache-replacement literature and of the
/// SSID-buffer use in `ch-attack`.
pub trait Cache<K: Eq + Hash + Clone> {
    /// Looks up `key`; on a miss, admits it (evicting per policy).
    /// Returns `true` on a hit.
    fn request(&mut self, key: &K) -> bool;

    /// `true` if `key` is currently resident (no state change).
    fn contains(&self, key: &K) -> bool;

    /// Number of resident keys.
    fn len(&self) -> usize;

    /// `true` if no keys are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of resident keys.
    fn capacity(&self) -> usize;
}

/// Runs a trace through a cache and returns the hit count — the measure
/// used by the replacement-policy comparison tests and benches.
pub fn hits_on_trace<K, C>(cache: &mut C, trace: impl IntoIterator<Item = K>) -> usize
where
    K: Eq + Hash + Clone,
    C: Cache<K>,
{
    trace.into_iter().filter(|key| cache.request(key)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LruCache;

    #[test]
    fn hits_on_trace_counts() {
        let mut cache = LruCache::new(2);
        let hits = hits_on_trace(&mut cache, vec![1, 2, 1, 3, 3]);
        // 1 miss, 2 miss, 1 hit, 3 miss (evicts 2), 3 hit.
        assert_eq!(hits, 2);
    }
}

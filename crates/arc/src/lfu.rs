//! Least-frequently-used cache.

use std::collections::BTreeSet;

use ch_sim::DetHashMap;
use std::hash::Hash;

use crate::traits::Cache;

/// An LFU cache with LRU tie-breaking: pure frequency, the
/// "popularity-only" end of the spectrum City-Hunter's PB buffer lives at.
///
/// Frequency counts persist only while a key is resident (no ghost
/// history), which is standard in-cache LFU.
///
/// ```
/// use ch_arc::{Cache, LfuCache};
/// let mut lfu = LfuCache::new(2);
/// lfu.request(&"hot");
/// lfu.request(&"hot");
/// lfu.request(&"cold");
/// lfu.request(&"new");        // evicts "cold" (lowest count)
/// assert!(lfu.contains(&"hot"));
/// assert!(!lfu.contains(&"cold"));
/// ```
#[derive(Debug, Clone)]
pub struct LfuCache<K> {
    // key -> (count, last-touch sequence)
    entries: DetHashMap<K, (u64, u64)>,
    // (count, last-touch sequence, key) ordered ascending: first = evictee.
    order: BTreeSet<(u64, u64, K)>,
    capacity: usize,
    next_seq: u64,
}

impl<K: Eq + Hash + Ord + Clone> LfuCache<K> {
    /// Creates an LFU cache holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LfuCache {
            entries: ch_sim::det_hash_map(),
            order: BTreeSet::new(),
            capacity,
            next_seq: 0,
        }
    }

    /// The access count of a resident key.
    pub fn count_of(&self, key: &K) -> Option<u64> {
        self.entries.get(key).map(|&(c, _)| c)
    }

    fn touch(&mut self, key: &K) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                let old = (entry.0, entry.1, key.clone());
                self.order.remove(&old);
                entry.0 += 1;
                entry.1 = seq;
                self.order.insert((entry.0, seq, key.clone()));
            }
            None => {
                self.entries.insert(key.clone(), (1, seq));
                self.order.insert((1, seq, key.clone()));
            }
        }
    }

    fn evict_one(&mut self) {
        if let Some(victim) = self.order.iter().next().cloned() {
            self.order.remove(&victim);
            self.entries.remove(&victim.2);
        }
    }
}

impl<K: Eq + Hash + Ord + Clone> Cache<K> for LfuCache<K> {
    fn request(&mut self, key: &K) -> bool {
        let hit = self.entries.contains_key(key);
        self.touch(key);
        if self.entries.len() > self.capacity {
            self.evict_one();
        }
        hit
    }

    fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn evicts_lowest_count() {
        let mut c = LfuCache::new(2);
        c.request(&1);
        c.request(&1);
        c.request(&2);
        c.request(&3); // 2 has count 1, 1 has count 2 -> evict 2
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        assert!(c.contains(&3));
        assert_eq!(c.count_of(&1), Some(2));
    }

    #[test]
    fn tie_breaks_by_recency() {
        let mut c = LfuCache::new(2);
        c.request(&"old");
        c.request(&"newer");
        c.request(&"incoming"); // both resident have count 1; evict "old"
        assert!(!c.contains(&"old"));
        assert!(c.contains(&"newer"));
    }

    #[test]
    fn new_key_cannot_displace_hot_set() {
        // Classic LFU property: a scan cannot flush a frequent set.
        let mut c = LfuCache::new(2);
        for _ in 0..5 {
            c.request(&1);
            c.request(&2);
        }
        for scan in 0..100 {
            c.request(&(1000 + scan));
        }
        assert!(c.contains(&1));
        assert!(c.contains(&2));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LfuCache::<u8>::new(0);
    }

    proptest! {
        #[test]
        fn prop_len_bounded_and_maps_consistent(
            cap in 1usize..12,
            trace in proptest::collection::vec(0u8..24, 0..200),
        ) {
            let mut c = LfuCache::new(cap);
            for k in &trace {
                c.request(k);
                prop_assert!(c.len() <= cap);
                prop_assert_eq!(c.entries.len(), c.order.len());
            }
        }
    }
}

//! The 2Q cache (Johnson & Shasha, VLDB '94).
//!
//! The other classic scan-resistant policy the ARC paper benchmarks
//! against, included so the §IV-C ablation can ask "did it have to be
//! ARC?": a FIFO probation queue `A1in`, a ghost FIFO `A1out` of recently
//! evicted probationers, and an LRU main area `Am`. A key only enters the
//! main area when it is re-requested *after* falling out of probation —
//! one-shot scan keys never make it.

use std::hash::Hash;

use crate::ordered::OrderedSet;
use crate::traits::Cache;

/// A 2Q cache with the paper-recommended tuning
/// (`Kin = c/4`, `Kout = c/2`).
///
/// ```
/// use ch_arc::{Cache, TwoQCache};
/// let mut cache = TwoQCache::new(8);
/// cache.request(&1);          // probation
/// for k in 100..120 {
///     cache.request(&k);      // scan flushes probation, not main
/// }
/// assert!(cache.len() <= 8);
/// ```
#[derive(Debug, Clone)]
pub struct TwoQCache<K> {
    /// Probation FIFO (resident).
    a1in: OrderedSet<K>,
    /// Ghost FIFO of keys evicted from probation (non-resident).
    a1out: OrderedSet<K>,
    /// Main LRU area (resident).
    am: OrderedSet<K>,
    capacity: usize,
    k_in: usize,
    k_out: usize,
}

impl<K: Eq + Hash + Clone> TwoQCache<K> {
    /// Creates a 2Q cache of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        TwoQCache {
            a1in: OrderedSet::new(),
            a1out: OrderedSet::new(),
            am: OrderedSet::new(),
            capacity,
            k_in: (capacity / 4).max(1),
            k_out: (capacity / 2).max(1),
        }
    }

    /// Sizes of `(A1in, A1out, Am)` (diagnostics/tests).
    pub fn list_sizes(&self) -> (usize, usize, usize) {
        (self.a1in.len(), self.a1out.len(), self.am.len())
    }

    /// RECLAIMFOR from the paper: free a resident slot if the cache is
    /// full — demoting an over-quota probationer into the ghost FIFO,
    /// otherwise evicting the main area's LRU (ghostless, as published).
    fn reclaim(&mut self) {
        if self.a1in.len() + self.am.len() < self.capacity {
            return;
        }
        if self.a1in.len() > self.k_in || self.am.is_empty() {
            if let Some(old) = self.a1in.pop_lru() {
                self.a1out.push_mru(old);
                if self.a1out.len() > self.k_out {
                    self.a1out.pop_lru();
                }
            }
        } else {
            self.am.pop_lru();
        }
    }
}

impl<K: Eq + Hash + Clone> Cache<K> for TwoQCache<K> {
    fn request(&mut self, key: &K) -> bool {
        if self.am.contains(key) {
            self.am.push_mru(key.clone());
            return true;
        }
        if self.a1in.contains(key) {
            // 2Q leaves probation order untouched on re-reference.
            return true;
        }
        if self.a1out.remove(key) {
            // Reclaimed from the ghost: promote straight to the main area.
            self.reclaim();
            self.am.push_mru(key.clone());
            return false;
        }
        // Cold miss: into probation.
        self.reclaim();
        self.a1in.push_mru(key.clone());
        false
    }

    fn contains(&self, key: &K) -> bool {
        self.am.contains(key) || self.a1in.contains(key)
    }

    fn len(&self) -> usize {
        self.am.len() + self.a1in.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;
    use crate::traits::hits_on_trace;
    use proptest::prelude::*;

    #[test]
    fn cold_keys_enter_probation() {
        let mut q = TwoQCache::new(8);
        assert!(!q.request(&1));
        let (a1in, a1out, am) = q.list_sizes();
        assert_eq!((a1in, a1out, am), (1, 0, 0));
        assert!(q.contains(&1));
        assert!(q.request(&1), "probation re-reference hits");
    }

    #[test]
    fn ghost_rerequest_promotes_to_main() {
        let mut q = TwoQCache::new(8); // k_in = 2, k_out = 4
        q.request(&1);
        // Flood probation past capacity so 1 falls into the ghost FIFO.
        for k in 10..18 {
            q.request(&k);
        }
        assert!(!q.contains(&1), "1 must have left residency");
        q.request(&1); // ghost hit: promote
        let (_, _, am) = q.list_sizes();
        assert!(am >= 1, "1 must now live in the main area");
        assert!(q.contains(&1));
        assert!(q.request(&1));
    }

    #[test]
    fn scan_resistance_beats_lru() {
        // Same workload as the ARC test: hot set swept twice per round,
        // then a one-shot scan burst.
        let capacity = 16;
        let mut trace = Vec::new();
        for round in 0..200u32 {
            for _ in 0..2 {
                for k in 0..12 {
                    trace.push(k);
                }
            }
            for s in 0..8 {
                trace.push(10_000 + round * 8 + s);
            }
        }
        let mut twoq = TwoQCache::new(capacity);
        let mut lru = LruCache::new(capacity);
        let twoq_hits = hits_on_trace(&mut twoq, trace.iter().copied());
        let lru_hits = hits_on_trace(&mut lru, trace.iter().copied());
        assert!(
            twoq_hits > lru_hits,
            "2Q {twoq_hits} should beat LRU {lru_hits} on scans"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TwoQCache::<u8>::new(0);
    }

    proptest! {
        /// Residents never exceed capacity; ghosts never exceed Kout; the
        /// three lists stay disjoint.
        #[test]
        fn prop_twoq_invariants(
            cap in 1usize..24,
            trace in proptest::collection::vec(0u8..48, 0..400),
        ) {
            let mut q = TwoQCache::new(cap);
            for k in &trace {
                q.request(k);
                let (a1in, a1out, am) = q.list_sizes();
                prop_assert!(a1in + am <= cap, "residents {a1in}+{am} > {cap}");
                prop_assert!(a1out <= (cap / 2).max(1));
                prop_assert!(q.contains(k), "requested key resident");
            }
            for key in 0u8..48 {
                let places = [
                    q.a1in.contains(&key),
                    q.a1out.contains(&key),
                    q.am.contains(&key),
                ];
                prop_assert!(
                    places.iter().filter(|&&b| b).count() <= 1,
                    "key {key} in multiple lists"
                );
            }
        }
    }
}

//! The Adaptive Replacement Cache (Megiddo & Modha, FAST '03).
//!
//! ARC partitions history into four lists:
//!
//! * **T1** — resident keys seen exactly once recently (recency list);
//! * **T2** — resident keys seen at least twice (frequency list);
//! * **B1** — *ghost* list of keys recently evicted from T1;
//! * **B2** — ghost list of keys recently evicted from T2.
//!
//! The target size `p` of T1 adapts: a hit in B1 ("we evicted a recent key
//! too early") grows `p`; a hit in B2 shrinks it. City-Hunter's §IV-C
//! buffer adaptation is this exact feedback loop transplanted onto SSID
//! buffers: a hit in the popularity ghost grows the popularity buffer, a
//! hit in the freshness ghost grows the freshness buffer.

use std::hash::Hash;

use ch_sim::ch_invariant;

use crate::ordered::OrderedSet;
use crate::traits::Cache;

/// A faithful ARC cache.
///
/// ```
/// use ch_arc::{ArcCache, Cache};
///
/// let mut arc = ArcCache::new(100);
/// for i in 0..100 {
///     arc.request(&i);
/// }
/// assert_eq!(arc.len(), 100);
/// assert!(arc.request(&0) || !arc.request(&0)); // queries always answer
/// ```
#[derive(Debug, Clone)]
pub struct ArcCache<K> {
    t1: OrderedSet<K>,
    t2: OrderedSet<K>,
    b1: OrderedSet<K>,
    b2: OrderedSet<K>,
    capacity: usize,
    /// Target size of T1, in `[0, capacity]`.
    p: usize,
}

impl<K: Eq + Hash + Clone> ArcCache<K> {
    /// Creates an ARC cache of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ArcCache {
            t1: OrderedSet::new(),
            t2: OrderedSet::new(),
            b1: OrderedSet::new(),
            b2: OrderedSet::new(),
            capacity,
            p: 0,
        }
    }

    /// The adaptation target for T1 (diagnostics/tests).
    pub fn p(&self) -> usize {
        self.p
    }

    /// Sizes of `(T1, T2, B1, B2)` (diagnostics/tests).
    pub fn list_sizes(&self) -> (usize, usize, usize, usize) {
        (self.t1.len(), self.t2.len(), self.b1.len(), self.b2.len())
    }

    /// The ARC structural invariants (FAST '03 §I.B), checked after every
    /// request when invariant checks are compiled in (`cargo test`, debug
    /// builds, or `--features ch-sim/debug-invariants`).
    fn check_invariants(&self) {
        let (t1, t2, b1, b2) = self.list_sizes();
        let c = self.capacity;
        ch_invariant!(
            t1 + t2 <= c,
            "residents |T1|+|T2| = {t1}+{t2} exceed capacity {c}"
        );
        ch_invariant!(t1 + b1 <= c, "|L1| = |T1|+|B1| = {t1}+{b1} exceeds {c}");
        ch_invariant!(
            t1 + t2 + b1 + b2 <= 2 * c,
            "history |L1|+|L2| = {} exceeds 2c = {}",
            t1 + t2 + b1 + b2,
            2 * c
        );
        ch_invariant!(self.p <= c, "target p = {} outside [0, {c}]", self.p);
        // Once the total history has reached capacity the cache stays
        // exactly full: every eviction is paired with an admission.
        ch_invariant!(
            t1 + t2 + b1 + b2 < c || t1 + t2 == c,
            "cache underfull ({t1}+{t2} < {c}) despite full history"
        );
    }

    /// REPLACE from the paper: evict from T1 into B1, or from T2 into B2,
    /// steering actual sizes toward the target `p`.
    fn replace(&mut self, in_b2: bool) {
        let t1_len = self.t1.len();
        if t1_len >= 1 && (t1_len > self.p || (in_b2 && t1_len == self.p)) {
            if let Some(victim) = self.t1.pop_lru() {
                self.b1.push_mru(victim);
            }
        } else if let Some(victim) = self.t2.pop_lru() {
            self.b2.push_mru(victim);
        } else if let Some(victim) = self.t1.pop_lru() {
            // T2 empty; fall back to T1 regardless of target.
            self.b1.push_mru(victim);
        }
    }
}

impl<K: Eq + Hash + Clone> Cache<K> for ArcCache<K> {
    fn request(&mut self, key: &K) -> bool {
        let hit = self.request_inner(key);
        self.check_invariants();
        hit
    }

    fn contains(&self, key: &K) -> bool {
        self.t1.contains(key) || self.t2.contains(key)
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<K: Eq + Hash + Clone> ArcCache<K> {
    fn request_inner(&mut self, key: &K) -> bool {
        let c = self.capacity;

        // Case I: hit in T1 or T2 — promote to T2 MRU.
        if self.t1.remove(key) || self.t2.contains(key) {
            self.t2.push_mru(key.clone());
            return true;
        }

        // Case II: ghost hit in B1 — favour recency.
        if self.b1.contains(key) {
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(c);
            self.replace(false);
            self.b1.remove(key);
            self.t2.push_mru(key.clone());
            return false;
        }

        // Case III: ghost hit in B2 — favour frequency.
        if self.b2.contains(key) {
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            self.replace(true);
            self.b2.remove(key);
            self.t2.push_mru(key.clone());
            return false;
        }

        // Case IV: cold miss.
        let l1 = self.t1.len() + self.b1.len();
        let total = l1 + self.t2.len() + self.b2.len();
        if l1 == c {
            if self.t1.len() < c {
                self.b1.pop_lru();
                self.replace(false);
            } else {
                // B1 empty and T1 full: drop T1's LRU without a ghost.
                self.t1.pop_lru();
            }
        } else if l1 < c && total >= c {
            if total == 2 * c {
                self.b2.pop_lru();
            }
            self.replace(false);
        }
        self.t1.push_mru(key.clone());
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruCache;
    use crate::traits::hits_on_trace;
    use proptest::prelude::*;

    /// The four ARC structural invariants from the paper.
    fn assert_invariants<K: Eq + Hash + Clone>(arc: &ArcCache<K>) {
        let (t1, t2, b1, b2) = arc.list_sizes();
        let c = arc.capacity();
        assert!(t1 + t2 <= c, "resident {t1}+{t2} > {c}");
        assert!(t1 + b1 <= c, "L1 {t1}+{b1} > {c}");
        assert!(t1 + t2 + b1 + b2 <= 2 * c, "history > 2c");
        assert!(arc.p() <= c, "p out of range");
    }

    #[test]
    fn basic_hit_miss() {
        let mut arc = ArcCache::new(2);
        assert!(!arc.request(&1));
        assert!(arc.request(&1));
        assert!(!arc.request(&2));
        assert!(!arc.request(&3));
        assert_invariants(&arc);
        assert!(arc.len() <= 2);
    }

    #[test]
    fn t1_full_cold_miss_drops_ghostless() {
        // Paper Case IV(a), else-branch: when T1 alone fills the cache and
        // B1 is empty, the T1 LRU is dropped without entering B1.
        let mut arc = ArcCache::new(2);
        arc.request(&1);
        arc.request(&2);
        arc.request(&3);
        assert!(!arc.contains(&1));
        let (t1, t2, b1, b2) = arc.list_sizes();
        assert_eq!((t1, t2, b1, b2), (2, 0, 0, 0));
        assert_invariants(&arc);
    }

    #[test]
    fn ghost_hit_readmits_to_t2() {
        let mut arc = ArcCache::new(2);
        arc.request(&1);
        arc.request(&1); // promote 1 to T2
        arc.request(&2); // T1 = [2]
        arc.request(&3); // REPLACE evicts 2 into B1
        let (_, _, b1, _) = arc.list_sizes();
        assert_eq!(b1, 1, "2 must be ghosted in B1");
        assert!(!arc.contains(&2));
        assert!(!arc.request(&2)); // ghost hit: still a miss...
        assert!(arc.contains(&2)); // ...but readmitted
        let (_, t2, _, _) = arc.list_sizes();
        assert!(t2 >= 1, "ghost readmission lands in T2");
        assert_invariants(&arc);
    }

    #[test]
    fn b1_hits_grow_p() {
        let mut arc = ArcCache::new(4);
        // Seed T2 so REPLACE has a frequency side.
        arc.request(&100);
        arc.request(&100);
        // Stream one-shot keys: once resident+history reaches c, REPLACE
        // spills T1 LRUs into B1.
        for i in 0..6 {
            arc.request(&i);
        }
        let (_, _, b1, _) = arc.list_sizes();
        assert!(
            b1 > 0,
            "setup must create B1 ghosts, got sizes {:?}",
            arc.list_sizes()
        );
        let ghost = *arc.b1.iter_lru_to_mru().next().unwrap();
        let p_before = arc.p();
        arc.request(&ghost); // B1 ghost hit
        assert!(arc.p() > p_before, "B1 hit must grow p");
        assert_invariants(&arc);
    }

    #[test]
    fn b2_hits_shrink_p() {
        let mut arc = ArcCache::new(4);
        // Fill T2 with 0..4, then push new doubletons through so the old
        // T2 content spills into B2.
        for i in 0..4 {
            arc.request(&i);
            arc.request(&i);
        }
        for i in 10..14 {
            arc.request(&i);
            arc.request(&i);
        }
        let (_, _, _, b2) = arc.list_sizes();
        assert!(
            b2 > 0,
            "setup must create B2 ghosts, got {:?}",
            arc.list_sizes()
        );
        let ghost = *arc.b2.iter_lru_to_mru().next().unwrap();
        arc.p = 3; // pretend recency had been favoured
        let p_before = arc.p();
        arc.request(&ghost);
        assert!(arc.p() < p_before, "B2 hit must shrink p");
        assert_invariants(&arc);
    }

    #[test]
    fn scan_resistance_beats_lru() {
        // Workload: a hot set swept twice per round (so it registers hits
        // and earns T2 residency) followed by a burst of one-shot scan
        // keys. The scans push every hot key out of an LRU before its next
        // round, halving LRU's hit opportunity; ARC parks the hot set in
        // T2 where scans cannot reach it.
        let capacity = 16;
        let hot: Vec<u32> = (0..12).collect();
        let mut trace = Vec::new();
        for round in 0..200u32 {
            for _ in 0..2 {
                for &k in &hot {
                    trace.push(k);
                }
            }
            for s in 0..8 {
                trace.push(1_000 + round * 8 + s);
            }
        }
        let mut arc = ArcCache::new(capacity);
        let mut lru = LruCache::new(capacity);
        let arc_hits = hits_on_trace(&mut arc, trace.iter().copied());
        let lru_hits = hits_on_trace(&mut lru, trace.iter().copied());
        assert!(
            arc_hits > lru_hits,
            "ARC {arc_hits} should beat LRU {lru_hits} on scans"
        );
        assert_invariants(&arc);
    }

    #[test]
    fn recency_workload_not_crippled() {
        // Pure reuse-within-window workload where LRU is optimal: ARC must
        // stay in the same ballpark (adaptivity claim).
        let capacity = 32;
        let mut trace = Vec::new();
        for i in 0..4_000u32 {
            trace.push(i % 40); // cycling window slightly over capacity
        }
        let mut arc = ArcCache::new(capacity);
        let mut lru = LruCache::new(capacity);
        let arc_hits = hits_on_trace(&mut arc, trace.iter().copied());
        let lru_hits = hits_on_trace(&mut lru, trace.iter().copied());
        // A 40-loop over a 32-cache is LRU's pathological case (0 hits);
        // ARC should do at least as well.
        assert!(arc_hits >= lru_hits, "arc={arc_hits} lru={lru_hits}");
    }

    #[test]
    fn capacity_one() {
        let mut arc = ArcCache::new(1);
        for k in 0..50 {
            arc.request(&(k % 3));
            assert_invariants(&arc);
            assert!(arc.len() <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ArcCache::<u8>::new(0);
    }

    /// Drives a corrupted cache through `check_invariants` and returns the
    /// panic message.
    fn violation_message(arc: &ArcCache<u32>) -> String {
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            arc.check_invariants();
        }))
        .expect_err("corrupted cache must trip an invariant");
        err.downcast_ref::<String>()
            .expect("ch_invariant panics with a formatted string")
            .clone()
    }

    #[test]
    fn invariant_catches_resident_overflow() {
        // |T1| + |T2| <= c
        let mut arc = ArcCache::new(2);
        for k in [1u32, 2, 3] {
            arc.t1.push_mru(k); // bypass request(): plant 3 residents in a 2-cache
        }
        assert!(violation_message(&arc).contains("exceed capacity"));
    }

    #[test]
    fn invariant_catches_l1_overflow() {
        // |T1| + |B1| <= c
        let mut arc = ArcCache::new(2);
        arc.t1.push_mru(1u32);
        arc.t1.push_mru(2);
        arc.b1.push_mru(3);
        assert!(violation_message(&arc).contains("|L1|"));
    }

    #[test]
    fn invariant_catches_history_overflow() {
        // |T1| + |T2| + |B1| + |B2| <= 2c, violated on the L2 side so the
        // narrower L1 check cannot fire first.
        let mut arc = ArcCache::new(1);
        arc.t2.push_mru(1u32);
        arc.b2.push_mru(2);
        arc.b2.push_mru(3);
        assert!(violation_message(&arc).contains("2c"));
    }

    #[test]
    fn invariant_catches_p_out_of_range() {
        let mut arc = ArcCache::<u32>::new(2);
        arc.p = 3;
        assert!(violation_message(&arc).contains("target p"));
    }

    #[test]
    fn invariant_catches_underfull_cache() {
        // Full history but residents below capacity: an eviction that lost
        // its paired admission.
        let mut arc = ArcCache::new(2);
        arc.t2.push_mru(1u32);
        arc.b2.push_mru(2);
        assert!(violation_message(&arc).contains("underfull"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The ARC structural invariants hold after every request, for any
        /// trace and capacity.
        #[test]
        fn prop_invariants_always_hold(
            cap in 1usize..24,
            trace in proptest::collection::vec(0u16..64, 0..400),
        ) {
            let mut arc = ArcCache::new(cap);
            for k in &trace {
                arc.request(k);
                let (t1, t2, b1, b2) = arc.list_sizes();
                prop_assert!(t1 + t2 <= cap);
                prop_assert!(t1 + b1 <= cap);
                prop_assert!(t1 + t2 + b1 + b2 <= 2 * cap);
                prop_assert!(arc.p() <= cap);
                // A key just requested is resident.
                prop_assert!(arc.contains(k));
            }
        }

        /// The four lists are always mutually disjoint.
        #[test]
        fn prop_lists_disjoint(
            cap in 1usize..12,
            trace in proptest::collection::vec(0u8..32, 0..300),
        ) {
            let mut arc = ArcCache::new(cap);
            for k in &trace {
                arc.request(k);
            }
            for key in 0u8..32 {
                let places = [
                    arc.t1.contains(&key),
                    arc.t2.contains(&key),
                    arc.b1.contains(&key),
                    arc.b2.contains(&key),
                ];
                let count = places.iter().filter(|&&b| b).count();
                prop_assert!(count <= 1, "key {key} in {count} lists");
            }
        }
    }
}

// Panic-freedom gate (clippy side of ch-lint rule R3); tests are exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # ch-arc — Adaptive Replacement Cache and baselines
//!
//! City-Hunter's dynamic popularity/freshness buffer split (§IV-C) is
//! "inspired by the Adaptive Replacement Cache algorithm (ARC)" of Megiddo
//! & Modha (FAST '03): two lists, one capturing *recency* and one capturing
//! *frequency*, whose sizes self-tune based on hits in two *ghost lists* of
//! recently evicted keys.
//!
//! This crate implements the real thing — [`ArcCache`], a faithful ARC with
//! the T1/T2/B1/B2 structure and the adaptation parameter `p` — together
//! with [`LruCache`], [`LfuCache`] and [`TwoQCache`] baselines and a common
//! [`Cache`] trait. `ch-attack` uses the same ghost-list adaptation idea for its SSID
//! buffers, and the test suite here validates the canonical behaviour that
//! design borrows (scan resistance, loop resistance, adaptation direction).
//!
//! ```
//! use ch_arc::{ArcCache, Cache};
//!
//! let mut cache = ArcCache::new(2);
//! assert!(!cache.request(&"a"));  // miss
//! assert!(!cache.request(&"b"));  // miss
//! assert!(cache.request(&"a"));   // hit
//! assert!(!cache.request(&"c"));  // miss, evicts
//! assert!(cache.len() <= 2);
//! ```

pub mod arc;
pub mod lfu;
pub mod lru;
mod ordered;
pub mod seen;
pub mod traits;
pub mod twoq;

pub use arc::ArcCache;
pub use lfu::LfuCache;
pub use lru::LruCache;
pub use seen::EpochSet;
pub use traits::Cache;
pub use twoq::TwoQCache;

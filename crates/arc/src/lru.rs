//! Least-recently-used cache.

use std::hash::Hash;

use crate::ordered::OrderedSet;
use crate::traits::Cache;

/// A classic LRU cache: pure recency, the "freshness-only" end of the
/// spectrum City-Hunter's FB buffer lives at.
///
/// ```
/// use ch_arc::{Cache, LruCache};
/// let mut lru = LruCache::new(2);
/// lru.request(&1);
/// lru.request(&2);
/// lru.request(&3);           // evicts 1
/// assert!(!lru.contains(&1));
/// assert!(lru.contains(&3));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache<K> {
    set: OrderedSet<K>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone> LruCache<K> {
    /// Creates an LRU cache holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            set: OrderedSet::new(),
            capacity,
        }
    }

    /// Keys from least to most recently used.
    pub fn iter_lru_to_mru(&self) -> impl Iterator<Item = &K> {
        self.set.iter_lru_to_mru()
    }
}

impl<K: Eq + Hash + Clone> Cache<K> for LruCache<K> {
    fn request(&mut self, key: &K) -> bool {
        let hit = self.set.contains(key);
        self.set.push_mru(key.clone());
        if self.set.len() > self.capacity {
            self.set.pop_lru();
        }
        hit
    }

    fn contains(&self, key: &K) -> bool {
        self.set.contains(key)
    }

    fn len(&self) -> usize {
        self.set.len()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eviction_order_is_lru() {
        let mut c = LruCache::new(3);
        for k in [1, 2, 3] {
            c.request(&k);
        }
        c.request(&1); // 1 now MRU
        c.request(&4); // evicts 2
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        assert!(c.contains(&3));
        assert!(c.contains(&4));
    }

    #[test]
    fn repeated_requests_hit() {
        let mut c = LruCache::new(1);
        assert!(!c.request(&"k"));
        assert!(c.request(&"k"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u8>::new(0);
    }

    proptest! {
        #[test]
        fn prop_len_never_exceeds_capacity(
            cap in 1usize..16,
            trace in proptest::collection::vec(0u8..32, 0..200),
        ) {
            let mut c = LruCache::new(cap);
            for k in &trace {
                c.request(k);
                prop_assert!(c.len() <= cap);
            }
        }

        #[test]
        fn prop_request_then_contains(
            cap in 1usize..16,
            trace in proptest::collection::vec(0u8..32, 1..100),
        ) {
            let mut c = LruCache::new(cap);
            for k in &trace {
                c.request(k);
                // The key just requested is always resident afterwards.
                prop_assert!(c.contains(k));
            }
        }
    }
}

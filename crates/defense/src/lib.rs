//! # ch-defense — evil-twin countermeasures
//!
//! The paper closes by noting that "existing techniques to detect evil
//! twin APs … can still work as effective countermeasures for the
//! City-Hunter". This crate makes that claim testable: it implements the
//! cheap, deployable end of the detection literature the paper cites
//! (client-side heuristics in the spirit of Gonzales et al. 2010 /
//! Hsu et al. 2015, and an operator-side monitor in the spirit of
//! Ma et al. 2008) and evaluates them against the actual frames our
//! attackers emit.
//!
//! * [`detectors`] — frame-stream detectors with a common [`Detector`]
//!   trait:
//!   [`detectors::CoLocationDetector`] (one BSSID advertising implausibly
//!   many SSIDs), [`detectors::DowngradeDetector`] (a remembered
//!   *protected* SSID offered open), and
//!   [`detectors::SilentApDetector`] (probe responses from a BSSID that
//!   never beacons).
//! * [`monitor`] — an operator-side aggregator that fuses alarms across
//!   observation points and names rogue BSSIDs.
//! * [`eval`] — drives each attacker generation against the detector
//!   bank and reports frames-to-detection.
//!
//! ```
//! use ch_defense::detectors::{CoLocationDetector, Detector};
//! use ch_wifi::mgmt::{MgmtFrame, ProbeResponse};
//! use ch_wifi::{Channel, MacAddr, Ssid};
//! use ch_sim::SimTime;
//!
//! let mut detector = CoLocationDetector::default_threshold();
//! let bssid = MacAddr::new([0x0a, 0, 0, 0, 0, 1]);
//! for i in 0..10 {
//!     let frame = MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
//!         bssid,
//!         MacAddr::new([2, 0, 0, 0, 0, 2]),
//!         Ssid::new_lossy(format!("Net-{i}")),
//!         Channel::default_attack_channel(),
//!     ));
//!     detector.observe(SimTime::from_millis(i), &frame);
//! }
//! assert!(!detector.alarms().is_empty());
//! ```

pub mod detectors;
pub mod eval;
pub mod monitor;

pub use detectors::{Alarm, AlarmKind, Detector, DetectorBank};
pub use eval::{evaluate_attacker, DetectionOutcome};
pub use monitor::NetworkMonitor;

//! Detection evaluation: how fast does each attacker generation trip the
//! standard client-side bank?
//!
//! The probe simulates one vulnerable client scanning repeatedly near an
//! attacker; every emitted frame is fed to the detectors. The outcome is
//! the number of attacker frames on air before the first alarm — a direct,
//! comparable "stealth budget" per attacker.

use ch_attack::{Attacker, AttackerSpec, Lure};
use ch_geo::{GeoPoint, HeatMap, WigleSnapshot};
use ch_sim::{SimDuration, SimTime};
use ch_wifi::mgmt::{Beacon, MgmtFrame, ProbeRequest, ProbeResponse};
use ch_wifi::{Channel, MacAddr, Ssid};

use crate::detectors::DetectorBank;

/// The result of one attacker-vs-detector-bank evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionOutcome {
    /// Attacker name.
    pub attacker: &'static str,
    /// Attacker frames emitted before (and including) the one that fired
    /// the first alarm; `None` if the bank never fired.
    pub frames_to_detection: Option<usize>,
    /// Scan rounds completed before detection (or total rounds if never).
    pub rounds_to_detection: Option<usize>,
    /// Total alarms after the full evaluation.
    pub total_alarms: usize,
}

impl DetectionOutcome {
    /// `true` if the bank caught the attacker at all.
    pub fn detected(&self) -> bool {
        self.frames_to_detection.is_some()
    }
}

/// Options for [`evaluate_spec`].
#[derive(Debug, Clone)]
pub struct EvalSpecOptions {
    /// Direct probes fed to the attacker before the evaluation begins —
    /// models a database pre-harvested from earlier victims (the MANA
    /// head start). Zero for a cold attacker.
    pub preharvest_direct: usize,
    /// Scan rounds to evaluate.
    pub rounds: usize,
    /// Direct-probe SSID the client also sends each round, if any.
    pub direct_ssid: Option<Ssid>,
}

/// Builds the attacker that [`AttackerSpec`] describes and runs it
/// through [`evaluate_attacker`] — the declarative entry point the
/// registry-driven countermeasure study uses.
pub fn evaluate_spec(
    spec: &AttackerSpec,
    wigle: &WigleSnapshot,
    heat: &HeatMap,
    site: GeoPoint,
    bank: &mut DetectorBank,
    opts: &EvalSpecOptions,
) -> DetectionOutcome {
    let mut attacker = spec.build_default(wigle, heat, site);
    for i in 0..opts.preharvest_direct {
        let probe = ProbeRequest::direct(
            MacAddr::from_index([2, 0, 0], i as u32 + 100),
            Ssid::new_lossy(format!("Disclosed-{i}")),
        );
        attacker.respond_to_probe(SimTime::ZERO, &probe, 40);
    }
    evaluate_attacker(
        attacker.as_mut(),
        bank,
        opts.rounds,
        opts.direct_ssid.clone(),
    )
}

/// Runs `rounds` scan rounds of a single client against `attacker`,
/// feeding every attacker frame to `bank`.
///
/// The client sends a broadcast probe per round (and, to exercise KARMA, a
/// direct probe for `direct_ssid` if provided). Frames are fed in air
/// order; detection is evaluated after each frame.
pub fn evaluate_attacker(
    attacker: &mut dyn Attacker,
    bank: &mut DetectorBank,
    rounds: usize,
    direct_ssid: Option<Ssid>,
) -> DetectionOutcome {
    evaluate_attacker_with_beacons(attacker, bank, rounds, direct_ssid, false)
}

/// [`evaluate_attacker`], with the attacker optionally *beaconing* its top
/// lure SSID like a legitimate AP — a stealth countermeasure against the
/// silent-AP heuristic (at the cost of a continuously observable
/// footprint). The co-location heuristic is unaffected.
pub fn evaluate_attacker_with_beacons(
    attacker: &mut dyn Attacker,
    bank: &mut DetectorBank,
    rounds: usize,
    direct_ssid: Option<Ssid>,
    beaconing: bool,
) -> DetectionOutcome {
    let client = MacAddr::new([0xac, 0x37, 0x43, 0, 0, 0x5d]);
    let channel = Channel::default_attack_channel();
    let mut frames = 0usize;
    let mut detection: Option<(usize, usize)> = None;

    // A beaconing attacker advertises from the moment it powers on —
    // before any probe arrives — exactly like a legitimate AP.
    let mut beacon_ssid: Option<Ssid> = beaconing.then(|| Ssid::new_lossy("Free Public WiFi"));
    'rounds: for round in 0..rounds {
        let now = SimTime::ZERO + SimDuration::from_secs(60 * round as u64);
        if beaconing {
            if let Some(ssid) = &beacon_ssid {
                // ~10 beacons/s; feed a representative sample per round.
                for k in 0..10u64 {
                    let frame =
                        MgmtFrame::Beacon(Beacon::open(attacker.bssid(), ssid.clone(), channel));
                    bank.observe(now + SimDuration::from_millis(k * 102), &frame);
                }
            }
        }
        let mut probes = vec![ProbeRequest::broadcast(client)];
        if let Some(ssid) = &direct_ssid {
            probes.push(ProbeRequest::direct(client, ssid.clone()));
        }
        for probe in probes {
            let lures: Vec<Lure> = attacker.respond_to_probe(now, &probe, 40);
            if beaconing {
                // Track the top lure so later beacons advertise it.
                if let Some(top) = lures.first() {
                    beacon_ssid = Some(top.ssid.clone());
                }
            }
            for lure in &lures {
                frames += 1;
                let frame = MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
                    attacker.bssid(),
                    client,
                    lure.ssid.clone(),
                    channel,
                ));
                bank.observe(now, &frame);
                if detection.is_none() && bank.first_alarm_at().is_some() {
                    detection = Some((frames, round));
                    // Keep feeding the rest of the evaluation so
                    // `total_alarms` reflects the full exposure, but we can
                    // stop early if the caller only wants detection: we
                    // continue for alarm totals.
                }
            }
        }
        if detection.is_some() && round + 1 >= rounds.min(detection.unwrap().1 + 2) {
            break 'rounds;
        }
    }

    DetectionOutcome {
        attacker: attacker.name(),
        frames_to_detection: detection.map(|(f, _)| f),
        rounds_to_detection: detection.map(|(_, r)| r),
        total_alarms: bank.alarm_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_attack::{CityHunter, CityHunterConfig, KarmaAttacker, ManaAttacker};
    use ch_geo::{CityModel, HeatMap, PhotoCollection, WigleSnapshot};
    use ch_sim::SimRng;

    fn bssid() -> MacAddr {
        MacAddr::new([0x0a, 0xbc, 0xde, 0, 0, 1])
    }

    fn city_hunter() -> CityHunter {
        let mut rng = SimRng::seed_from(0xDEF);
        let city = CityModel::synthesize(&mut rng);
        let wigle = WigleSnapshot::synthesize(&city, &mut rng);
        let photos = PhotoCollection::synthesize(&city, 10_000, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 100.0);
        let site = city.pois()[0].location;
        CityHunter::new(bssid(), &wigle, &heat, site, CityHunterConfig::default())
    }

    #[test]
    fn city_hunter_detected_within_one_burst() {
        let mut attacker = city_hunter();
        let mut bank = DetectorBank::client_standard([]);
        let outcome = evaluate_attacker(&mut attacker, &mut bank, 5, None);
        assert!(outcome.detected());
        // The co-location detector fires at its threshold (8 SSIDs), well
        // inside the first 40-lure burst.
        assert!(outcome.frames_to_detection.unwrap() <= 40, "{outcome:?}");
        assert_eq!(outcome.rounds_to_detection, Some(0));
    }

    #[test]
    fn karma_invisible_without_direct_probes() {
        let mut attacker = KarmaAttacker::new(bssid());
        let mut bank = DetectorBank::client_standard([]);
        let outcome = evaluate_attacker(&mut attacker, &mut bank, 5, None);
        assert!(!outcome.detected(), "KARMA emits nothing to detect");
        assert_eq!(outcome.total_alarms, 0);
    }

    #[test]
    fn karma_caught_by_downgrade_on_direct_probe() {
        let mut attacker = KarmaAttacker::new(bssid());
        let corp = Ssid::new("Corp-WPA2").unwrap();
        let mut bank = DetectorBank::client_standard([corp.clone()]);
        let outcome = evaluate_attacker(&mut attacker, &mut bank, 3, Some(corp));
        assert!(outcome.detected(), "{outcome:?}");
        assert_eq!(outcome.frames_to_detection, Some(1));
    }

    #[test]
    fn beaconing_evades_silent_ap_but_not_colocation() {
        use crate::detectors::{AlarmKind, CoLocationDetector, SilentApDetector};

        // Silent-AP alone: a beaconing attacker is never flagged by it.
        let mut attacker = city_hunter();
        let mut bank = DetectorBank::new();
        bank.add(SilentApDetector::default_grace());
        let outcome = evaluate_attacker_with_beacons(&mut attacker, &mut bank, 5, None, true);
        assert!(
            !outcome.detected(),
            "beaconing must evade the silent-AP heuristic: {outcome:?}"
        );

        // But the co-location heuristic still fires on the lure burst.
        let mut attacker2 = city_hunter();
        let mut bank2 = DetectorBank::new();
        bank2.add(CoLocationDetector::default_threshold());
        let outcome2 = evaluate_attacker_with_beacons(&mut attacker2, &mut bank2, 5, None, true);
        assert!(outcome2.detected());
        // And the verdict names the co-location signature.
        let report = bank2.report();
        assert!(report.iter().any(|(name, alarms)| *name == "co-location"
            && alarms
                .iter()
                .any(|a| matches!(a.kind, AlarmKind::CoLocation { .. }))));
    }

    #[test]
    fn evaluate_spec_matches_hand_built_attacker() {
        let mut rng = SimRng::seed_from(0xDEF);
        let city = CityModel::synthesize(&mut rng);
        let wigle = WigleSnapshot::synthesize(&city, &mut rng);
        let photos = PhotoCollection::synthesize(&city, 10_000, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 100.0);
        let site = city.pois()[0].location;

        // Spec path.
        let mut bank = DetectorBank::client_standard([]);
        let spec_outcome = evaluate_spec(
            &ch_attack::AttackerSpec::Mana,
            &wigle,
            &heat,
            site,
            &mut bank,
            &EvalSpecOptions {
                preharvest_direct: 10,
                rounds: 5,
                direct_ssid: None,
            },
        );

        // Hand-built path, preharvesting the same probes.
        let mut attacker = ManaAttacker::new(ch_attack::AttackerSpec::default_bssid());
        for i in 0..10u32 {
            let probe = ProbeRequest::direct(
                MacAddr::from_index([2, 0, 0], i + 100),
                Ssid::new_lossy(format!("Disclosed-{i}")),
            );
            attacker.respond_to_probe(SimTime::ZERO, &probe, 40);
        }
        let mut bank2 = DetectorBank::client_standard([]);
        let manual = evaluate_attacker(&mut attacker, &mut bank2, 5, None);
        assert_eq!(spec_outcome, manual);
    }

    #[test]
    fn mana_detected_once_database_grows() {
        let mut attacker = ManaAttacker::new(bssid());
        // Pre-harvest: 10 legacy clients disclosed SSIDs elsewhere.
        for i in 0..10u32 {
            let probe = ProbeRequest::direct(
                MacAddr::from_index([2, 0, 0], i + 10),
                Ssid::new_lossy(format!("Disclosed-{i}")),
            );
            attacker.respond_to_probe(SimTime::ZERO, &probe, 40);
        }
        let mut bank = DetectorBank::client_standard([]);
        let outcome = evaluate_attacker(&mut attacker, &mut bank, 5, None);
        assert!(outcome.detected());
        assert!(outcome.frames_to_detection.unwrap() <= 10);
    }
}

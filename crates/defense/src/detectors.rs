//! Frame-stream evil-twin detectors.

use std::collections::{HashMap, HashSet, VecDeque};

use ch_sim::{SimDuration, SimTime};
use ch_wifi::mgmt::MgmtFrame;
use ch_wifi::{MacAddr, Ssid};

/// What a detector believes it found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlarmKind {
    /// One BSSID advertised implausibly many distinct SSIDs.
    CoLocation {
        /// The suspicious BSSID.
        bssid: MacAddr,
        /// Distinct SSIDs counted when the alarm fired.
        distinct_ssids: usize,
    },
    /// A network remembered as protected was offered open.
    SecurityDowngrade {
        /// The offending BSSID.
        bssid: MacAddr,
        /// The downgraded SSID.
        ssid: Ssid,
    },
    /// A BSSID emits probe responses but has never been seen beaconing.
    SilentAp {
        /// The beacon-less BSSID.
        bssid: MacAddr,
        /// Probe responses observed without a beacon.
        responses: usize,
    },
    /// A source is spraying deauthentication frames at many clients — the
    /// §V-B forced-rescan attack (Bellardo & Savage 2003).
    DeauthFlood {
        /// The (spoofed) source address of the deauth frames.
        source: MacAddr,
        /// Distinct victims inside the detection window.
        victims: usize,
    },
}

/// One raised alarm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// When it fired.
    pub at: SimTime,
    /// What fired.
    pub kind: AlarmKind,
}

/// A passive detector fed the frame stream a client (or monitor) can hear.
pub trait Detector {
    /// Detector name for reports.
    fn name(&self) -> &'static str;

    /// Feeds one frame.
    fn observe(&mut self, at: SimTime, frame: &MgmtFrame);

    /// Alarms raised so far, in order.
    fn alarms(&self) -> &[Alarm];

    /// Convenience: the instant of the first alarm.
    fn first_alarm_at(&self) -> Option<SimTime> {
        self.alarms().first().map(|a| a.at)
    }
}

/// Flags a BSSID that advertises more distinct SSIDs than any legitimate
/// AP would (multi-SSID APs exist, but not at KARMA scale). One alarm per
/// BSSID.
#[derive(Debug, Clone)]
pub struct CoLocationDetector {
    threshold: usize,
    ssids_per_bssid: HashMap<MacAddr, HashSet<Ssid>>,
    alarmed: HashSet<MacAddr>,
    alarms: Vec<Alarm>,
}

impl CoLocationDetector {
    /// Creates a detector that alarms at `threshold` distinct SSIDs.
    ///
    /// # Panics
    ///
    /// Panics if `threshold < 2` (every AP has one SSID).
    pub fn new(threshold: usize) -> Self {
        assert!(threshold >= 2, "co-location threshold must be >= 2");
        CoLocationDetector {
            threshold,
            ssids_per_bssid: HashMap::new(),
            alarmed: HashSet::new(),
            alarms: Vec::new(),
        }
    }

    /// The deployable default: 8 SSIDs (beyond any realistic multi-SSID
    /// enterprise AP, but one fifth of a single City-Hunter burst).
    pub fn default_threshold() -> Self {
        CoLocationDetector::new(8)
    }
}

impl Detector for CoLocationDetector {
    fn name(&self) -> &'static str {
        "co-location"
    }

    fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        let (bssid, ssid) = match frame {
            MgmtFrame::ProbeResponse(p) => (p.bssid, p.ssid.clone()),
            MgmtFrame::Beacon(b) => (b.bssid, b.ssid.clone()),
            _ => return,
        };
        let seen = self.ssids_per_bssid.entry(bssid).or_default();
        seen.insert(ssid);
        if seen.len() >= self.threshold && self.alarmed.insert(bssid) {
            self.alarms.push(Alarm {
                at,
                kind: AlarmKind::CoLocation {
                    bssid,
                    distinct_ssids: seen.len(),
                },
            });
        }
    }

    fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }
}

/// Flags an SSID the client remembers as *protected* being offered open —
/// the classic evil-twin downgrade tell.
#[derive(Debug, Clone)]
pub struct DowngradeDetector {
    protected: HashSet<Ssid>,
    alarms: Vec<Alarm>,
}

impl DowngradeDetector {
    /// Creates the detector from the client's protected PNL entries.
    pub fn new(protected: impl IntoIterator<Item = Ssid>) -> Self {
        DowngradeDetector {
            protected: protected.into_iter().collect(),
            alarms: Vec::new(),
        }
    }
}

impl Detector for DowngradeDetector {
    fn name(&self) -> &'static str {
        "security-downgrade"
    }

    fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        let (bssid, ssid, privacy) = match frame {
            MgmtFrame::ProbeResponse(p) => (p.bssid, &p.ssid, p.capabilities.privacy),
            MgmtFrame::Beacon(b) => (b.bssid, &b.ssid, b.capabilities.privacy),
            _ => return,
        };
        if !privacy && self.protected.contains(ssid) {
            self.alarms.push(Alarm {
                at,
                kind: AlarmKind::SecurityDowngrade {
                    bssid,
                    ssid: ssid.clone(),
                },
            });
        }
    }

    fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }
}

/// Flags BSSIDs that answer probes but never beacon. Legitimate APs beacon
/// ~10×/s; KARMA-family attackers typically stay dark to reduce their
/// footprint. One alarm per BSSID, after a grace count of responses.
#[derive(Debug, Clone)]
pub struct SilentApDetector {
    grace_responses: usize,
    beaconing: HashSet<MacAddr>,
    responses: HashMap<MacAddr, usize>,
    alarmed: HashSet<MacAddr>,
    alarms: Vec<Alarm>,
}

impl SilentApDetector {
    /// Creates a detector that tolerates `grace_responses` responses from
    /// a BSSID before expecting to have heard a beacon.
    pub fn new(grace_responses: usize) -> Self {
        SilentApDetector {
            grace_responses: grace_responses.max(1),
            beaconing: HashSet::new(),
            responses: HashMap::new(),
            alarmed: HashSet::new(),
            alarms: Vec::new(),
        }
    }

    /// Default grace: 20 responses (two seconds of beacon interval,
    /// comfortably enough to have heard one).
    pub fn default_grace() -> Self {
        SilentApDetector::new(20)
    }
}

impl Detector for SilentApDetector {
    fn name(&self) -> &'static str {
        "silent-ap"
    }

    fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        match frame {
            MgmtFrame::Beacon(b) => {
                self.beaconing.insert(b.bssid);
            }
            MgmtFrame::ProbeResponse(p) => {
                if self.beaconing.contains(&p.bssid) {
                    return;
                }
                let count = self.responses.entry(p.bssid).or_insert(0);
                *count += 1;
                if *count >= self.grace_responses && self.alarmed.insert(p.bssid) {
                    self.alarms.push(Alarm {
                        at,
                        kind: AlarmKind::SilentAp {
                            bssid: p.bssid,
                            responses: *count,
                        },
                    });
                }
            }
            _ => {}
        }
    }

    fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }
}

/// Flags a source deauthenticating many *distinct* clients in a sliding
/// window. A real AP deauthenticates an occasional client (idle timeout,
/// load shedding); the §V-B attack sprays deauths across the room. One
/// alarm per source.
#[derive(Debug, Clone)]
pub struct DeauthFloodDetector {
    window: SimDuration,
    victim_threshold: usize,
    /// Recent deauths per source: (time, victim) in window order.
    recent: HashMap<MacAddr, VecDeque<(SimTime, MacAddr)>>,
    alarmed: HashSet<MacAddr>,
    alarms: Vec<Alarm>,
}

impl DeauthFloodDetector {
    /// Creates a detector: alarm when one source deauths
    /// `victim_threshold` distinct clients within `window`.
    ///
    /// # Panics
    ///
    /// Panics if `victim_threshold < 2`.
    pub fn new(window: SimDuration, victim_threshold: usize) -> Self {
        assert!(victim_threshold >= 2, "deauth threshold must be >= 2");
        DeauthFloodDetector {
            window,
            victim_threshold,
            recent: HashMap::new(),
            alarmed: HashSet::new(),
            alarms: Vec::new(),
        }
    }

    /// The deployable default: 5 distinct victims within 60 s.
    pub fn default_threshold() -> Self {
        DeauthFloodDetector::new(SimDuration::from_secs(60), 5)
    }
}

impl Detector for DeauthFloodDetector {
    fn name(&self) -> &'static str {
        "deauth-flood"
    }

    fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        let MgmtFrame::Deauthentication(d) = frame else {
            return;
        };
        let queue = self.recent.entry(d.source).or_default();
        queue.push_back((at, d.destination));
        while let Some(&(t, _)) = queue.front() {
            if at.saturating_since(t) > self.window {
                queue.pop_front();
            } else {
                break;
            }
        }
        let distinct: HashSet<MacAddr> = queue.iter().map(|&(_, v)| v).collect();
        if distinct.len() >= self.victim_threshold && self.alarmed.insert(d.source) {
            self.alarms.push(Alarm {
                at,
                kind: AlarmKind::DeauthFlood {
                    source: d.source,
                    victims: distinct.len(),
                },
            });
        }
    }

    fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }
}

/// A bank of detectors fed the same stream.
#[derive(Default)]
pub struct DetectorBank {
    detectors: Vec<Box<dyn Detector>>,
}

impl DetectorBank {
    /// An empty bank.
    pub fn new() -> Self {
        DetectorBank::default()
    }

    /// The standard client-side bank: co-location + silent-AP, plus a
    /// downgrade detector for the given protected SSIDs.
    pub fn client_standard(protected: impl IntoIterator<Item = Ssid>) -> Self {
        let mut bank = DetectorBank::new();
        bank.add(CoLocationDetector::default_threshold());
        bank.add(SilentApDetector::default_grace());
        bank.add(DowngradeDetector::new(protected));
        bank.add(DeauthFloodDetector::default_threshold());
        bank
    }

    /// Adds a detector.
    pub fn add(&mut self, detector: impl Detector + 'static) {
        self.detectors.push(Box::new(detector));
    }

    /// Feeds one frame to every detector.
    pub fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        for d in &mut self.detectors {
            d.observe(at, frame);
        }
    }

    /// `(detector name, alarms)` for every member.
    pub fn report(&self) -> Vec<(&'static str, &[Alarm])> {
        self.detectors
            .iter()
            .map(|d| (d.name(), d.alarms()))
            .collect()
    }

    /// The earliest alarm across the bank.
    pub fn first_alarm_at(&self) -> Option<SimTime> {
        self.detectors
            .iter()
            .filter_map(|d| d.first_alarm_at())
            .min()
    }

    /// Total alarms across the bank.
    pub fn alarm_count(&self) -> usize {
        self.detectors.iter().map(|d| d.alarms().len()).sum()
    }
}

impl std::fmt::Debug for DetectorBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorBank")
            .field("detectors", &self.detectors.len())
            .field("alarms", &self.alarm_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_wifi::mgmt::{Beacon, CapabilityInfo, ProbeResponse};
    use ch_wifi::Channel;

    fn bssid() -> MacAddr {
        MacAddr::new([0x0a, 0, 0, 0, 0, 1])
    }

    fn client() -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, 2])
    }

    fn lure(name: &str) -> MgmtFrame {
        MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
            bssid(),
            client(),
            Ssid::new(name).unwrap(),
            Channel::default_attack_channel(),
        ))
    }

    fn beacon(name: &str) -> MgmtFrame {
        MgmtFrame::Beacon(Beacon::open(
            bssid(),
            Ssid::new(name).unwrap(),
            Channel::default_attack_channel(),
        ))
    }

    #[test]
    fn colocation_fires_once_at_threshold() {
        let mut d = CoLocationDetector::new(3);
        d.observe(SimTime::from_millis(1), &lure("A"));
        d.observe(SimTime::from_millis(2), &lure("B"));
        assert!(d.alarms().is_empty());
        d.observe(SimTime::from_millis(3), &lure("C"));
        assert_eq!(d.alarms().len(), 1);
        // Re-observing the same SSIDs or more does not re-alarm.
        d.observe(SimTime::from_millis(4), &lure("D"));
        assert_eq!(d.alarms().len(), 1);
        assert_eq!(d.first_alarm_at(), Some(SimTime::from_millis(3)));
        match &d.alarms()[0].kind {
            AlarmKind::CoLocation { distinct_ssids, .. } => {
                assert_eq!(*distinct_ssids, 3)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn colocation_ignores_repeats_of_one_ssid() {
        let mut d = CoLocationDetector::new(3);
        for i in 0..10 {
            d.observe(SimTime::from_millis(i), &lure("SameNet"));
        }
        assert!(d.alarms().is_empty());
    }

    #[test]
    fn downgrade_fires_only_on_remembered_protected() {
        let mut d = DowngradeDetector::new([Ssid::new("Corp").unwrap()]);
        d.observe(SimTime::from_millis(1), &lure("Open-Cafe"));
        assert!(d.alarms().is_empty());
        d.observe(SimTime::from_millis(2), &lure("Corp"));
        assert_eq!(d.alarms().len(), 1);
        // A properly protected beacon of the same SSID is fine.
        let mut protected = Beacon::open(
            bssid(),
            Ssid::new("Corp").unwrap(),
            Channel::default_attack_channel(),
        );
        protected.capabilities = CapabilityInfo::protected_ap();
        d.observe(SimTime::from_millis(3), &MgmtFrame::Beacon(protected));
        assert_eq!(d.alarms().len(), 1);
    }

    #[test]
    fn silent_ap_detects_beaconless_responders() {
        let mut d = SilentApDetector::new(5);
        for i in 0..5 {
            d.observe(SimTime::from_millis(i), &lure("X"));
        }
        assert_eq!(d.alarms().len(), 1);
        // A beaconing AP with the same behaviour is never flagged.
        let mut ok = SilentApDetector::new(5);
        ok.observe(SimTime::ZERO, &beacon("X"));
        for i in 0..50 {
            ok.observe(SimTime::from_millis(i), &lure("X"));
        }
        assert!(ok.alarms().is_empty());
    }

    #[test]
    fn bank_aggregates() {
        let mut bank = DetectorBank::client_standard([Ssid::new("Corp").unwrap()]);
        for i in 0..30u64 {
            bank.observe(SimTime::from_millis(i), &lure(&format!("N{i}")));
        }
        bank.observe(SimTime::from_millis(31), &lure("Corp"));
        assert!(bank.alarm_count() >= 3, "{bank:?}");
        assert!(bank.first_alarm_at().is_some());
        let report = bank.report();
        assert_eq!(report.len(), 4);
        assert!(report
            .iter()
            .any(|(n, a)| *n == "co-location" && !a.is_empty()));
    }

    #[test]
    #[should_panic(expected = "threshold must be >= 2")]
    fn threshold_one_rejected() {
        let _ = CoLocationDetector::new(1);
    }
}

#[cfg(test)]
mod deauth_flood_tests {
    use super::*;
    use ch_wifi::mgmt::{Deauthentication, MgmtFrame, ReasonCode};

    fn deauth(at_s: u64, source: u8, victim: u8) -> (SimTime, MgmtFrame) {
        (
            SimTime::from_secs(at_s),
            MgmtFrame::Deauthentication(Deauthentication {
                source: MacAddr::new([0, 0x90, 0x4c, 0, 0, source]),
                destination: MacAddr::new([2, 0, 0, 0, 0, victim]),
                reason: ReasonCode::PrevAuthExpired,
            }),
        )
    }

    #[test]
    fn flood_detected_at_threshold() {
        let mut d = DeauthFloodDetector::new(SimDuration::from_secs(60), 3);
        for (i, victim) in (1..=3u8).enumerate() {
            let (at, frame) = deauth(i as u64 * 10, 7, victim);
            d.observe(at, &frame);
        }
        assert_eq!(d.alarms().len(), 1);
        match &d.alarms()[0].kind {
            AlarmKind::DeauthFlood { victims, .. } => assert_eq!(*victims, 3),
            other => panic!("{other:?}"),
        }
        // One alarm per source, even on continued flooding.
        let (at, frame) = deauth(35, 7, 9);
        d.observe(at, &frame);
        assert_eq!(d.alarms().len(), 1);
    }

    #[test]
    fn occasional_deauths_tolerated() {
        let mut d = DeauthFloodDetector::new(SimDuration::from_secs(60), 3);
        // Three victims, but spread over five minutes: window slides past.
        for (i, victim) in (1..=3u8).enumerate() {
            let (at, frame) = deauth(i as u64 * 150, 7, victim);
            d.observe(at, &frame);
        }
        assert!(d.alarms().is_empty());
        // Repeated deauths of the SAME victim never trip it either.
        let mut d2 = DeauthFloodDetector::default_threshold();
        for i in 0..20 {
            let (at, frame) = deauth(i, 7, 1);
            d2.observe(at, &frame);
        }
        assert!(d2.alarms().is_empty());
    }

    #[test]
    fn sources_tracked_independently() {
        let mut d = DeauthFloodDetector::new(SimDuration::from_secs(60), 3);
        for victim in 1..=2u8 {
            let (at, frame) = deauth(victim as u64, 7, victim);
            d.observe(at, &frame);
            let (at, frame) = deauth(victim as u64, 8, victim);
            d.observe(at, &frame);
        }
        assert!(d.alarms().is_empty(), "neither source crossed threshold");
    }

    #[test]
    #[should_panic(expected = "deauth threshold must be >= 2")]
    fn tiny_threshold_rejected() {
        let _ = DeauthFloodDetector::new(SimDuration::from_secs(60), 1);
    }
}

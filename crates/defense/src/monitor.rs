//! Operator-side monitoring.
//!
//! A venue operator (the defending side of Ma et al. 2008's hybrid
//! framework) aggregates detector alarms from multiple observation points
//! and maintains a rogue-BSSID list, which is what a real deployment would
//! feed into containment (deauthenticating the rogue, alerting staff).

use std::collections::{BTreeMap, HashSet};

use ch_sim::SimTime;
use ch_wifi::MacAddr;

use crate::detectors::{Alarm, AlarmKind};

/// Aggregated view of alarms across observation points.
#[derive(Debug, Clone, Default)]
pub struct NetworkMonitor {
    /// Rogue verdicts: BSSID → first-flagged instant.
    rogues: BTreeMap<MacAddr, SimTime>,
    /// Known-legitimate BSSIDs (the operator's own inventory).
    allowlist: HashSet<MacAddr>,
    alarms_ingested: usize,
}

impl NetworkMonitor {
    /// A monitor with an empty inventory.
    pub fn new() -> Self {
        NetworkMonitor::default()
    }

    /// Registers the operator's own APs; alarms against them are treated
    /// as misconfiguration rather than rogue activity.
    pub fn allow(&mut self, bssid: MacAddr) {
        self.allowlist.insert(bssid);
    }

    /// Ingests one alarm from any observation point.
    pub fn ingest(&mut self, alarm: &Alarm) {
        self.alarms_ingested += 1;
        let bssid = match alarm.kind {
            AlarmKind::CoLocation { bssid, .. } => bssid,
            AlarmKind::SecurityDowngrade { bssid, .. } => bssid,
            AlarmKind::SilentAp { bssid, .. } => bssid,
            AlarmKind::DeauthFlood { source, .. } => source,
        };
        if self.allowlist.contains(&bssid) {
            return;
        }
        self.rogues.entry(bssid).or_insert(alarm.at);
    }

    /// Ingests a batch.
    pub fn ingest_all<'a>(&mut self, alarms: impl IntoIterator<Item = &'a Alarm>) {
        for alarm in alarms {
            self.ingest(alarm);
        }
    }

    /// The rogue list: `(bssid, first flagged)`, ordered by BSSID.
    pub fn rogues(&self) -> impl Iterator<Item = (MacAddr, SimTime)> + '_ {
        self.rogues.iter().map(|(b, t)| (*b, *t))
    }

    /// `true` if `bssid` has been flagged.
    pub fn is_rogue(&self, bssid: MacAddr) -> bool {
        self.rogues.contains_key(&bssid)
    }

    /// When `bssid` was first flagged.
    pub fn flagged_at(&self, bssid: MacAddr) -> Option<SimTime> {
        self.rogues.get(&bssid).copied()
    }

    /// Total alarms processed.
    pub fn alarms_ingested(&self) -> usize {
        self.alarms_ingested
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_wifi::Ssid;

    fn alarm(at_ms: u64, bssid: MacAddr) -> Alarm {
        Alarm {
            at: SimTime::from_millis(at_ms),
            kind: AlarmKind::CoLocation {
                bssid,
                distinct_ssids: 9,
            },
        }
    }

    #[test]
    fn first_flag_time_sticks() {
        let mut m = NetworkMonitor::new();
        let rogue = MacAddr::new([0x0a, 0, 0, 0, 0, 1]);
        m.ingest(&alarm(50, rogue));
        m.ingest(&alarm(10, rogue)); // later alarm with earlier time: keep first ingested
        assert!(m.is_rogue(rogue));
        assert_eq!(m.flagged_at(rogue), Some(SimTime::from_millis(50)));
        assert_eq!(m.alarms_ingested(), 2);
        assert_eq!(m.rogues().count(), 1);
    }

    #[test]
    fn allowlisted_bssids_never_flagged() {
        let mut m = NetworkMonitor::new();
        let own = MacAddr::new([0x00, 0x11, 0, 0, 0, 1]);
        m.allow(own);
        m.ingest(&alarm(5, own));
        assert!(!m.is_rogue(own));
        assert_eq!(m.rogues().count(), 0);
    }

    #[test]
    fn all_alarm_kinds_attribute_bssid() {
        let mut m = NetworkMonitor::new();
        let b1 = MacAddr::new([0x0a, 0, 0, 0, 0, 1]);
        let b2 = MacAddr::new([0x0a, 0, 0, 0, 0, 2]);
        let b3 = MacAddr::new([0x0a, 0, 0, 0, 0, 3]);
        m.ingest_all(&[
            Alarm {
                at: SimTime::from_millis(1),
                kind: AlarmKind::CoLocation {
                    bssid: b1,
                    distinct_ssids: 8,
                },
            },
            Alarm {
                at: SimTime::from_millis(2),
                kind: AlarmKind::SecurityDowngrade {
                    bssid: b2,
                    ssid: Ssid::new("Corp").unwrap(),
                },
            },
            Alarm {
                at: SimTime::from_millis(3),
                kind: AlarmKind::SilentAp {
                    bssid: b3,
                    responses: 20,
                },
            },
        ]);
        assert!(m.is_rogue(b1) && m.is_rogue(b2) && m.is_rogue(b3));
    }
}

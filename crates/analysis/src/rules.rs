//! The ch-lint rules.
//!
//! | id               | checks                                               |
//! |------------------|------------------------------------------------------|
//! | `default-hasher` | R1: no `HashMap`/`HashSet` with std's random hasher  |
//! |                  | in determinism-critical crates                       |
//! | `nondeterminism` | R2: no `Instant::now` / `SystemTime::now` /          |
//! |                  | `thread_rng` outside `ch-bench` and test code        |
//! | `panic-path`     | R3: no `.unwrap()` / `.expect(…)` / `panic!` in the  |
//! |                  | library code of `ch-wifi`, `ch-arc`, `ch-attack`,    |
//! |                  | `ch-fleet`, `ch-detect`                              |
//! | `missing-decode` | R4: every public type in `ch-wifi::frame`/`::ie`     |
//! |                  | with an `encode*` method has a `decode*`/`parse*`    |
//! |                  | counterpart                                          |
//! | `ssid-clone`     | R5: no `.clone()` on an SSID-named value in the      |
//! |                  | library code of `ch-attack`/`ch-arc`/`ch-detect` —   |
//! |                  | the hot path works on interned `SsidId`s             |
//! | `hot-path-alloc` | R6: no allocating construct in any function          |
//! |                  | reachable from the configured `[hot-path]` roots     |
//! |                  | (call-graph rule; needs the workspace index)         |
//! | `seed-discipline`| R7: `SimRng`/`FaultRng` seeds in determinism crates  |
//! |                  | come from `derive_seed`, a parent `fork`, or a       |
//! |                  | config field — never a literal or a reused seed      |
//!
//! Any rule is suppressed at a site by a trailing (or directly preceding)
//! `// ch-lint: allow(<rule>)` comment.

use crate::config::HotPathRoot;
use crate::index::{functions, WorkspaceIndex};
use crate::lexer::{LexedFile, Token};
use crate::{FileContext, FileKind, Finding};

/// Crates whose state must be bit-for-bit reproducible across runs (R1).
pub const DETERMINISM_CRATES: &[&str] = &[
    "ch-sim",
    "ch-phone",
    "ch-mobility",
    "ch-fleet",
    "ch-scenarios",
    "ch-arc",
    "ch-attack",
    "ch-detect",
    "ch-serve",
];

/// Crates whose library code must not panic (R3). `ch-fleet` is in the
/// list because the engine's whole job is absorbing *other* code's
/// panics — it must not add its own; escalation goes through
/// `ch_sim::invariant::violation`.
pub const PANIC_FREE_CRATES: &[&str] = &[
    "ch-wifi",
    "ch-arc",
    "ch-attack",
    "ch-fleet",
    "ch-detect",
    "ch-serve",
];

/// Crates exempt from R2 (benchmarks legitimately read wall clocks).
pub const WALL_CLOCK_CRATES: &[&str] = &["ch-bench"];

/// Crates whose probe hot paths must stay on interned ids (R5).
pub const SSID_HOT_PATH_CRATES: &[&str] = &["ch-attack", "ch-arc", "ch-detect"];

/// All rule identifiers, for config validation and `--list-rules`.
pub const ALL_RULES: &[&str] = &[
    "default-hasher",
    "nondeterminism",
    "panic-path",
    "missing-decode",
    "ssid-clone",
    "hot-path-alloc",
    "seed-discipline",
];

/// Rationale and escape hatch for every rule, for `--explain`.
pub const RULE_EXPLANATIONS: &[(&str, &str)] = &[
    (
        "default-hasher",
        "Why: std's HashMap/HashSet seed their hasher per process, so iteration \
         order differs run to run — in a determinism crate that breaks the \
         bit-for-bit reproduction the paper artifacts depend on.\n\
         Instead: use ch_sim::DetHashMap/DetHashSet (fixed-seed Fx hash) or pass \
         an explicit hasher type parameter.\n\
         Escape: // ch-lint: allow(default-hasher) on the offending line.",
    ),
    (
        "nondeterminism",
        "Why: Instant::now/SystemTime::now read the wall clock and \
         thread_rng/rand::random draw OS-seeded randomness — any of them makes a \
         simulation run unreproducible.\n\
         Instead: take time from SimTime and randomness from a seeded SimRng; \
         wall-clock measurement belongs in ch-bench or the pinned fleet \
         telemetry module.\n\
         Escape: // ch-lint: allow(nondeterminism), or a [scoped-allow] entry in \
         ch-lint.toml for an architectural exemption.",
    ),
    (
        "panic-path",
        "Why: .unwrap()/.expect()/panic!/unreachable!/todo!/unimplemented! in \
         ch-wifi/ch-arc/ch-attack/ch-fleet/ch-detect library code can kill a \
         mid-campaign process on malformed input the codec should have surfaced \
         as a value.\n\
         Instead: return Result/Option; escalate real invariant violations \
         through ch_sim::invariant::violation.\n\
         Escape: // ch-lint: allow(panic-path) with a justification comment.",
    ),
    (
        "missing-decode",
        "Why: a public wire-format type that encodes but cannot decode breaks \
         round-tripping — capture replay and golden-frame tests silently lose \
         coverage.\n\
         Instead: give every encode* method a decode*/parse* counterpart on the \
         same type.\n\
         Escape: // ch-lint: allow(missing-decode) on the encode method.",
    ),
    (
        "ssid-clone",
        "Why: cloning an SSID-named String value in ch-attack/ch-arc/ch-detect \
         re-grows the very allocations the interned-SsidId hot path removed.\n\
         Instead: intern once, pass SsidId, resolve at the lure boundary \
         (db.resolve(id).clone() is an Arc refcount bump and does not match).\n\
         Escape: // ch-lint: allow(ssid-clone) for justified refcount bumps.",
    ),
    (
        "hot-path-alloc",
        "Why: the probe loop's zero-alloc claim is only enforced at runtime on \
         branches the perfbench workload happens to execute; this rule walks the \
         workspace call graph from the [hot-path] roots in ch-lint.toml and bans \
         allocating constructs (Vec::new, vec![], format!, to_string, \
         String::from, to_vec, .collect(), Box::new, .clone()) in every function \
         reachable from them — cold branches included.\n\
         Limits: resolution is name-based with crate-dependency pruning; it \
         cannot see through trait objects or generics when the method name never \
         appears at the call site, and .clone() is flagged whatever the receiver \
         type (the lexer has no type information — Copy clones are already \
         denied by clippy::clone_on_copy, Arc bumps take the escape).\n\
         Escape: // ch-lint: allow(hot-path-alloc) with a justification comment.",
    ),
    (
        "seed-discipline",
        "Why: a hard-coded SimRng/FaultRng seed in a determinism crate silently \
         correlates runs that must be independent, and reusing one seed \
         expression twice in a function yields two RNGs drawing identical \
         streams — both break per-job determinism in fleet campaigns.\n\
         Instead: derive seeds with ch_fleet::derive_seed, fork a parent RNG \
         (rng.fork(label)), or take the seed from a Config/Spec field; literals \
         stay legal in tests, examples and ch-bench.\n\
         Escape: // ch-lint: allow(seed-discipline) on the construction line.",
    ),
];

/// Runs every per-file rule over one lexed file. The workspace-level rule
/// (R6 `hot-path-alloc`) runs in [`check_workspace`], which needs every
/// file plus the symbol index.
pub fn check_file(ctx: &FileContext, file: &LexedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    rule_default_hasher(ctx, file, &mut findings);
    rule_nondeterminism(ctx, file, &mut findings);
    rule_panic_path(ctx, file, &mut findings);
    rule_missing_decode(ctx, file, &mut findings);
    rule_ssid_clone(ctx, file, &mut findings);
    rule_seed_discipline(ctx, file, &mut findings);
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    findings
}

/// Runs the index-aware rules (pass 2) over the whole workspace. `files`
/// must be the slice the index was [built](WorkspaceIndex::build) from.
pub fn check_workspace(
    files: &[(FileContext, LexedFile)],
    index: &WorkspaceIndex,
    roots: &[HotPathRoot],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    rule_hot_path_alloc(files, index, roots, &mut findings);
    findings
}

fn push_unless_allowed(
    findings: &mut Vec<Finding>,
    file: &LexedFile,
    ctx: &FileContext,
    rule: &'static str,
    line: u32,
    message: String,
) {
    if !file.is_allowed(rule, line) {
        findings.push(Finding {
            rule,
            path: ctx.path.clone(),
            line,
            message,
        });
    }
}

/// True when `tokens[i]` is production code for `ctx` (not a test target,
/// not inside `#[cfg(test)] mod`).
fn in_production(ctx: &FileContext, file: &LexedFile, i: usize) -> bool {
    ctx.kind == FileKind::Library && !file.is_test[i]
}

// --- R1: default-hasher ---------------------------------------------------

fn rule_default_hasher(ctx: &FileContext, file: &LexedFile, findings: &mut Vec<Finding>) {
    if !DETERMINISM_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        if !in_production(ctx, file, i) {
            continue;
        }
        // A hasher type parameter makes the collection deterministic:
        // `HashMap<K, V, S>` has two top-level commas, `HashSet<T, S>` one.
        let needed_commas = if name == "HashMap" { 2 } else { 1 };
        if generic_arg_commas(toks, i + 1) >= Some(needed_commas) {
            continue;
        }
        push_unless_allowed(
            findings,
            file,
            ctx,
            "default-hasher",
            tok.line,
            format!(
                "`{name}` with std's randomly seeded hasher in determinism-critical \
                 crate `{}`; use `ch_sim::Det{name}` (or pass an explicit hasher)",
                ctx.crate_name
            ),
        );
    }
}

/// If the token at `i` (optionally after a `::` turbofish) opens a generic
/// argument list, returns the number of top-level commas inside it.
fn generic_arg_commas(toks: &[Token], mut i: usize) -> Option<usize> {
    if toks.get(i)?.is_punct(':')
        && toks.get(i + 1)?.is_punct(':')
        && toks.get(i + 2)?.is_punct('<')
    {
        i += 2;
    }
    if !toks.get(i)?.is_punct('<') {
        return None;
    }
    let mut depth = 0usize;
    let mut commas = 0usize;
    loop {
        let t = toks.get(i)?;
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return Some(commas);
            }
        } else if t.is_punct(',') && depth == 1 {
            commas += 1;
        } else if t.is_punct(';') || t.is_punct('{') {
            // Not a generic list after all (e.g. a `<` comparison).
            return None;
        }
        i += 1;
    }
}

// --- R2: nondeterminism ---------------------------------------------------

fn rule_nondeterminism(ctx: &FileContext, file: &LexedFile, findings: &mut Vec<Finding>) {
    if WALL_CLOCK_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if !in_production(ctx, file, i) {
            continue;
        }
        let offending = match name {
            "Instant" | "SystemTime" if path_call(toks, i, "now") => {
                format!("`{name}::now()` reads the wall clock")
            }
            "thread_rng" => "`thread_rng` draws OS-seeded randomness".to_string(),
            "rand" if path_call(toks, i, "random") => {
                "`rand::random` draws OS-seeded randomness".to_string()
            }
            _ => continue,
        };
        push_unless_allowed(
            findings,
            file,
            ctx,
            "nondeterminism",
            tok.line,
            format!(
                "{offending}; simulations must take time from `SimTime` and \
                 randomness from a seeded `SimRng`"
            ),
        );
    }
}

/// `tokens[i]` followed by `:: method`.
fn path_call(toks: &[Token], i: usize, method: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.ident() == Some(method))
}

// --- R3: panic-path -------------------------------------------------------

fn rule_panic_path(ctx: &FileContext, file: &LexedFile, findings: &mut Vec<Finding>) {
    if !PANIC_FREE_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if !in_production(ctx, file, i) {
            continue;
        }
        let what = match name {
            "unwrap" | "expect"
                if i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                format!(".{name}()")
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                format!("{name}!")
            }
            _ => continue,
        };
        push_unless_allowed(
            findings,
            file,
            ctx,
            "panic-path",
            tok.line,
            format!(
                "`{what}` in library code of panic-free crate `{}`; return a \
                 Result/Option or justify with an allow comment",
                ctx.crate_name
            ),
        );
    }
}

// --- R4: missing-decode ---------------------------------------------------

/// Path suffixes R4 applies to: the ch-wifi wire-format modules.
const CODEC_MODULES: &[&str] = &["src/frame.rs", "src/ie.rs"];

fn rule_missing_decode(ctx: &FileContext, file: &LexedFile, findings: &mut Vec<Finding>) {
    if ctx.crate_name != "ch-wifi" {
        return;
    }
    let unix_path = ctx.path.replace('\\', "/");
    if !CODEC_MODULES.iter().any(|m| unix_path.ends_with(m)) {
        return;
    }
    let toks = &file.tokens;

    // Public type declarations: `pub struct X` / `pub enum X`.
    let mut public_types: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].ident() == Some("pub")
            && toks
                .get(i + 1)
                .is_some_and(|t| matches!(t.ident(), Some("struct" | "enum")))
        {
            if let Some(name) = toks.get(i + 2).and_then(Token::ident) {
                public_types.push(name);
            }
        }
    }

    // Inherent-impl methods, with the line of each `fn`.
    for (type_name, methods) in inherent_impl_methods(toks) {
        if !public_types.contains(&type_name) {
            continue;
        }
        let has_decoder = methods
            .iter()
            .any(|(m, _)| m.starts_with("decode") || m.starts_with("parse"));
        for (method, line) in &methods {
            if method.starts_with("encode") && !has_decoder {
                push_unless_allowed(
                    findings,
                    file,
                    ctx,
                    "missing-decode",
                    *line,
                    format!(
                        "public type `{type_name}` can `{method}` but has no \
                         `decode*`/`parse*` counterpart; wire formats must \
                         round-trip"
                    ),
                );
            }
        }
    }
}

/// Collects `(type_name, [(method, line)])` for every inherent `impl` block
/// (trait impls are skipped — their methods belong to the trait contract).
fn inherent_impl_methods(toks: &[Token]) -> Vec<(&str, Vec<(&str, u32)>)> {
    let mut out: Vec<(&str, Vec<(&str, u32)>)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident() != Some("impl") {
            i += 1;
            continue;
        }
        i += 1;
        // Skip `impl<...>` generics.
        if toks.get(i).is_some_and(|t| t.is_punct('<')) {
            i = match skip_balanced(toks, i, '<', '>') {
                Some(j) => j,
                None => break,
            };
        }
        // Read the type path up to `{`, `for`, or `where`.
        let mut type_name: Option<&str> = None;
        let mut is_trait_impl = false;
        let mut in_where = false;
        while let Some(t) = toks.get(i) {
            if t.is_punct('{') {
                break;
            }
            if let Some(id) = t.ident() {
                if id == "for" {
                    is_trait_impl = true;
                } else if id == "where" {
                    // Bounds follow; the head type is already recorded.
                    in_where = true;
                } else if !in_where {
                    // Later path segments overwrite: `fmt::Display` → Display.
                    type_name = Some(id);
                }
            } else if t.is_punct('<') {
                i = match skip_balanced(toks, i, '<', '>') {
                    Some(j) => j,
                    None => return out,
                };
                continue;
            }
            i += 1;
        }
        let Some(body_open) = toks.get(i).filter(|t| t.is_punct('{')).map(|_| i) else {
            continue;
        };
        let body_close = match skip_balanced(toks, body_open, '{', '}') {
            Some(j) => j,
            None => toks.len(),
        };
        if is_trait_impl {
            i = body_close;
            continue;
        }
        let mut methods = Vec::new();
        let mut depth = 0i32;
        for j in body_open..body_close {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
            } else if depth == 1 && toks[j].ident() == Some("fn") {
                if let Some(name) = toks.get(j + 1).and_then(Token::ident) {
                    methods.push((name, toks[j + 1].line));
                }
            }
        }
        if let Some(name) = type_name {
            match out.iter_mut().find(|(t, _)| *t == name) {
                Some((_, ms)) => ms.extend(methods),
                None => out.push((name, methods)),
            }
        }
        i = body_close;
    }
    out
}

// --- R5: ssid-clone -------------------------------------------------------

fn rule_ssid_clone(ctx: &FileContext, file: &LexedFile, findings: &mut Vec<Finding>) {
    if !SSID_HOT_PATH_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        // The receiver must be a *named* SSID value: `<ssid-ish ident> . clone (`.
        // `db.resolve(id).clone()` deliberately does not match — the token
        // before `.clone(` there is `)`, and resolving an id is the
        // sanctioned way to materialize an `Ssid` at the edge.
        if tok.ident() != Some("clone")
            || i < 2
            || !toks[i - 1].is_punct('.')
            || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let Some(receiver) = toks[i - 2].ident() else {
            continue;
        };
        if !receiver.to_ascii_lowercase().contains("ssid") {
            continue;
        }
        if !in_production(ctx, file, i) {
            continue;
        }
        push_unless_allowed(
            findings,
            file,
            ctx,
            "ssid-clone",
            tok.line,
            format!(
                "`{receiver}.clone()` in the library code of `{}`; the probe \
                 hot path compares interned `SsidId`s — intern the SSID (or \
                 justify the refcount bump with an allow comment)",
                ctx.crate_name
            ),
        );
    }
}

// --- R6: hot-path-alloc ---------------------------------------------------

/// The banned allocating constructs, as token predicates. Deliberate
/// growth patterns (`Vec::with_capacity`, `extend` into reserved space,
/// `resize` for lazy scratch growth) are *not* banned: the zero-alloc
/// claim is "no allocation at steady state", and those amortize to zero.
/// `.clone()` is flagged unconditionally — the lexer cannot see types, so
/// `Copy` clones (already denied workspace-wide by `clippy::clone_on_copy`)
/// and sanctioned `Arc` refcount bumps both need the allow comment.
fn allocating_construct(toks: &[Token], i: usize) -> Option<String> {
    let name = toks[i].ident()?;
    let prev_dot = i >= 1 && toks[i - 1].is_punct('.');
    let next_bang = toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
    let next_paren = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
    let turbofish = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('<'));
    match name {
        "Vec" if path_call(toks, i, "new") => Some("Vec::new()".to_string()),
        "String" if path_call(toks, i, "from") => Some("String::from(…)".to_string()),
        "Box" if path_call(toks, i, "new") => Some("Box::new(…)".to_string()),
        "vec" if next_bang => Some("vec![…]".to_string()),
        "format" if next_bang => Some("format!(…)".to_string()),
        "to_string" | "to_vec" | "clone" if prev_dot && next_paren => Some(format!(".{name}()")),
        "collect" if prev_dot && (next_paren || turbofish) => Some(".collect()".to_string()),
        _ => None,
    }
}

fn rule_hot_path_alloc(
    files: &[(FileContext, LexedFile)],
    index: &WorkspaceIndex,
    roots: &[HotPathRoot],
    findings: &mut Vec<Finding>,
) {
    // Resolve each configured root to definitions: the function name must
    // match and the defining file must be the root's scope (exact file) or
    // sit under it (directory scope — how one root covers every impl of a
    // trait method).
    let mut root_defs: Vec<usize> = Vec::new();
    for root in roots {
        for &d in index.defs_named(&root.name) {
            let path = files[index.defs[d].file].0.path.as_str();
            let in_scope = path == root.scope
                || path
                    .strip_prefix(root.scope.as_str())
                    .is_some_and(|rest| rest.starts_with('/'));
            if in_scope && !index.defs[d].is_test && !root_defs.contains(&d) {
                root_defs.push(d);
            }
        }
    }
    for (d, from) in index.reachable_from(&root_defs) {
        let def = &index.defs[d];
        let (ctx, file) = &files[def.file];
        let root = &index.defs[from];
        let root_desc = format!(
            "{}::{}",
            files[root.file].0.path.trim_end_matches(".rs"),
            root.name
        );
        let toks = &file.tokens;
        for i in def.body.0..def.body.1.min(toks.len()) {
            let Some(construct) = allocating_construct(toks, i) else {
                continue;
            };
            if !in_production(ctx, file, i) {
                continue;
            }
            push_unless_allowed(
                findings,
                file,
                ctx,
                "hot-path-alloc",
                toks[i].line,
                format!(
                    "`{construct}` allocates inside `{}`, which is reachable \
                     from hot-path root `{root_desc}`; reuse a caller-owned \
                     buffer/interned id (or justify with an allow comment)",
                    def.name
                ),
            );
        }
    }
}

// --- R7: seed-discipline --------------------------------------------------

/// RNG types whose construction R7 polices.
const SEEDED_RNGS: &[&str] = &["SimRng", "FaultRng"];

fn rule_seed_discipline(ctx: &FileContext, file: &LexedFile, findings: &mut Vec<Finding>) {
    if !DETERMINISM_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = &file.tokens;
    // Duplicate-seed detection is scoped per function body: two RNGs built
    // from the same seed expression draw identical streams — the caller
    // wanted `fork`.
    for def in functions(ctx, file, 0) {
        let mut seen_args: Vec<String> = Vec::new();
        let mut i = def.body.0;
        while i < def.body.1.min(toks.len()) {
            let is_ctor = toks[i].ident().is_some_and(|n| SEEDED_RNGS.contains(&n))
                && path_call(toks, i, "seed_from");
            if !is_ctor {
                i += 1;
                continue;
            }
            let rng = toks[i].ident().unwrap_or_default();
            let call_line = toks[i].line;
            // Argument token range: `(` after `seed_from` to its match.
            let open = i + 4;
            let close = if toks.get(open).is_some_and(|t| t.is_punct('(')) {
                skip_balanced(toks, open, '(', ')').unwrap_or(open + 1)
            } else {
                i += 1;
                continue;
            };
            let args = &toks[open + 1..close.saturating_sub(1)];
            if in_production(ctx, file, i) {
                if args.len() == 1 && args[0].number().is_some() {
                    push_unless_allowed(
                        findings,
                        file,
                        ctx,
                        "seed-discipline",
                        call_line,
                        format!(
                            "`{rng}::seed_from({})` hard-codes a seed in \
                             determinism crate `{}`; take it from \
                             `ch_fleet::derive_seed`, a parent `fork`, or a \
                             config/spec field (literals are fine in tests, \
                             examples and ch-bench)",
                            args[0].number().unwrap_or_default(),
                            ctx.crate_name
                        ),
                    );
                } else {
                    let text = render_tokens(args);
                    if !text.is_empty() && seen_args.contains(&text) {
                        push_unless_allowed(
                            findings,
                            file,
                            ctx,
                            "seed-discipline",
                            call_line,
                            format!(
                                "`{rng}::seed_from({text})` reuses a seed \
                                 already consumed in `{}`; two RNGs seeded \
                                 alike draw identical streams — derive a \
                                 distinct seed with `fork`/`derive_seed`",
                                def.name
                            ),
                        );
                    }
                    seen_args.push(text);
                }
            }
            i = close;
        }
    }
}

/// Canonical text of an argument token run, for duplicate comparison.
fn render_tokens(toks: &[Token]) -> String {
    let mut out = String::new();
    for t in toks {
        if !out.is_empty() {
            out.push(' ');
        }
        match &t.kind {
            crate::lexer::TokenKind::Ident(s) => out.push_str(s),
            crate::lexer::TokenKind::Number(s) => out.push_str(s),
            crate::lexer::TokenKind::Punct(c) => out.push(*c),
        }
    }
    out
}

/// From `toks[open]` (which must be `open_c`), returns the index just past
/// the matching `close_c`.
fn skip_balanced(toks: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

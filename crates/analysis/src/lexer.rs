//! A minimal Rust lexer for rule checking.
//!
//! `ch-lint` does not need a real parser: its rules are token patterns
//! (`HashMap` followed by generics, `.unwrap(`, `Instant :: now`, …).
//! What it *does* need to get exactly right is what a grep cannot:
//!
//! * comments and string/char literals must never produce tokens (a doc
//!   comment mentioning `panic!` is not a panic);
//! * raw strings (`r#"…"#`), byte strings, nested block comments and
//!   lifetimes (`'a` is not an unterminated char literal) must lex;
//! * `// ch-lint: allow(rule)` comments must be collected so findings can
//!   be suppressed at the offending line;
//! * `#[cfg(test)] mod … { … }` regions must be identified so test-only
//!   code is exempt from production rules.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Any single punctuation/operator character.
    Punct(char),
    /// A numeric literal, verbatim (digits, suffix, hex letters — e.g.
    /// `42`, `0xFA_017`, `1.5f64`). The seed-discipline rule needs to see
    /// literal seeds; every other rule ignores these tokens.
    Number(String),
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The literal text, if this token is a number.
    pub fn number(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Number(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A lexed source file: tokens, suppression comments, test-region map.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    /// `(line, rule)` pairs from `// ch-lint: allow(rule, …)` comments.
    pub allows: Vec<(u32, String)>,
    /// `is_test[i]` is `true` when `tokens[i]` sits inside a
    /// `#[cfg(test)] mod` body.
    pub is_test: Vec<bool>,
}

impl LexedFile {
    /// `true` if `rule` is suppressed at `line` — the allow comment may
    /// trail the offending line or sit on the line directly above it.
    /// (`allows` already stores the line each comment *applies to*.)
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|(l, r)| r == rule && *l == line)
    }
}

/// Lexes `source`, never failing: unterminated constructs consume the
/// rest of the input, which is the forgiving behaviour a linter wants.
pub fn lex(source: &str) -> LexedFile {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: LexedFile::default(),
    };
    lx.run();
    let is_test = test_regions(&lx.out.tokens);
    let mut file = lx.out;
    file.is_test = is_test;
    file
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                '\'' => self.char_or_lifetime(),
                _ if c.is_alphabetic() || c == '_' => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    if !c.is_whitespace() {
                        self.out.tokens.push(Token {
                            kind: TokenKind::Punct(c),
                            line,
                        });
                    }
                }
            }
        }
    }

    /// Handles `r"…"`/`r#"…"#`/`b"…"`/`br#"…"#`/`b'…'` prefixes. Returns
    /// `false` without consuming anything when `r`/`b` starts a plain
    /// identifier (`rng`, `break`, …).
    fn raw_or_byte_prefix(&mut self) -> bool {
        let first = self.peek(0);
        let mut ahead = 1; // chars of prefix before any hashes
        if first == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        let is_raw = first == Some('r') || ahead == 2;
        let mut hashes = 0;
        if is_raw {
            while self.peek(ahead) == Some('#') {
                ahead += 1;
                hashes += 1;
            }
        }
        if self.peek(ahead) == Some('"') {
            for _ in 0..=ahead {
                self.bump(); // prefix and opening quote
            }
            if is_raw {
                // Raw strings have no escapes: end at `"` + `hashes` hashes.
                while let Some(c) = self.bump() {
                    if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
            } else {
                // b"…": ordinary escape rules.
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '"' => break,
                        _ => {}
                    }
                }
            }
            return true;
        }
        if first == Some('b') && self.peek(1) == Some('\'') {
            self.bump(); // the `b`; then lex as a char literal
            self.char_or_lifetime();
            return true;
        }
        false
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        // A trailing comment blesses its own line; a comment on a line of
        // its own blesses the line below it.
        let trailing = self.out.tokens.last().is_some_and(|t| t.line == line);
        let applies_to = if trailing { line } else { line + 1 };
        record_allows(&text, applies_to, &mut self.out.allows);
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: skip the escape sequence head, then
                // run to the closing quote (covers '\n', '\'', '\u{…}').
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek(1) == Some('\'') {
                    // 'x'
                    self.bump();
                    self.bump();
                } else {
                    // lifetime: consume the identifier, no closing quote
                    while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                        self.bump();
                    }
                }
            }
            Some(_) => {
                // Symbol char literal like ' ' or '{'
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
            }
            None => {}
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.tokens.push(Token {
            kind: TokenKind::Ident(text),
            line,
        });
    }

    fn number(&mut self) {
        // Consume the usual suspects (digits, `_`, type suffixes, hex
        // letters, one decimal point) as one literal token.
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_' || c == '.') {
            if self.peek(0) == Some('.') && self.peek(1) == Some('.') {
                break; // range operator, not a decimal point
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.tokens.push(Token {
            kind: TokenKind::Number(text),
            line,
        });
    }
}

/// Extracts `allow(rule, …)` directives from one line comment.
fn record_allows(comment: &str, line: u32, allows: &mut Vec<(u32, String)>) {
    let Some(idx) = comment.find("ch-lint:") else {
        return;
    };
    let rest = comment[idx + "ch-lint:".len()..].trim_start();
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.find(')').map(|end| &r[..end]))
    else {
        return;
    };
    for rule in args.split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            allows.push((line, rule.to_string()));
        }
    }
}

/// Marks every token inside a `#[cfg(test)] mod name { … }` body.
fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut is_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(body_open) = cfg_test_mod_at(tokens, i) {
            // Walk the balanced braces of the module body.
            let mut depth = 0usize;
            let mut j = body_open;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                is_test[j] = true;
                j += 1;
            }
            if j < tokens.len() {
                is_test[j] = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    is_test
}

/// If `tokens[i..]` starts a `#[cfg(test)] … mod name {`, returns the index
/// of the opening brace.
fn cfg_test_mod_at(tokens: &[Token], i: usize) -> Option<usize> {
    let pat = [
        tokens.get(i)?.is_punct('#'),
        tokens.get(i + 1)?.is_punct('['),
        tokens.get(i + 2)?.ident() == Some("cfg"),
        tokens.get(i + 3)?.is_punct('('),
        tokens.get(i + 4)?.ident() == Some("test"),
        tokens.get(i + 5)?.is_punct(')'),
        tokens.get(i + 6)?.is_punct(']'),
    ];
    if pat.iter().any(|ok| !ok) {
        return None;
    }
    // Skip any further attributes between the cfg and the item.
    let mut j = i + 7;
    while tokens.get(j)?.is_punct('#') {
        let mut depth = 0usize;
        j += 1; // at '['
        loop {
            let t = tokens.get(j)?;
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    if tokens.get(j)?.ident() == Some("pub") {
        j += 1;
        if tokens.get(j)?.is_punct('(') {
            // pub(crate) etc.
            while !tokens.get(j)?.is_punct(')') {
                j += 1;
            }
            j += 1;
        }
    }
    if tokens.get(j)?.ident() != Some("mod") {
        return None;
    }
    j += 1; // module name
    tokens.get(j)?.ident()?;
    j += 1;
    if tokens.get(j)?.is_punct('{') {
        Some(j)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_tokens() {
        let src = r##"
            // HashMap in a comment
            /* panic! in /* a nested */ block */
            let s = "Instant::now() in a string";
            let r = r#"thread_rng in a raw "string""#;
            let b = b"SystemTime";
            real_ident();
        "##;
        assert_eq!(
            idents(src),
            vec!["let", "s", "let", "r", "let", "b", "real_ident"]
        );
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_file() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } after()";
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()), "{ids:?}");
    }

    #[test]
    fn char_literals_lex() {
        let src = "let c = 'x'; let n = '\\n'; let q = '\\''; tail()";
        assert!(idents(src).contains(&"tail".to_string()));
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let file = lex("a\nb\n\nc");
        let lines: Vec<u32> = file.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn allow_comments_are_recorded_and_scoped() {
        let src = "\
let a = 1; // ch-lint: allow(default-hasher)
// ch-lint: allow(panic-path, nondeterminism)
let b = 2;
let c = 3;
";
        let file = lex(src);
        assert!(file.is_allowed("default-hasher", 1));
        assert!(!file.is_allowed("default-hasher", 2));
        assert!(file.is_allowed("panic-path", 3)); // line under the comment
        assert!(file.is_allowed("nondeterminism", 3));
        assert!(!file.is_allowed("panic-path", 4));
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    fn t() { inner_marker(); }
}
fn prod2() {}
";
        let file = lex(src);
        let flag_of = |name: &str| {
            let idx = file
                .tokens
                .iter()
                .position(|t| t.ident() == Some(name))
                .unwrap();
            file.is_test[idx]
        };
        assert!(!flag_of("prod"));
        assert!(flag_of("inner_marker"));
        assert!(!flag_of("prod2"));
    }

    #[test]
    fn nested_braces_inside_test_mod_stay_marked() {
        let src = "\
#[cfg(test)]
mod tests {
    struct S { f: u8 }
    fn t() { if true { marked(); } }
}
fn unmarked() {}
";
        let file = lex(src);
        let idx = file
            .tokens
            .iter()
            .position(|t| t.ident() == Some("marked"))
            .unwrap();
        assert!(file.is_test[idx]);
        let idx = file
            .tokens
            .iter()
            .position(|t| t.ident() == Some("unmarked"))
            .unwrap();
        assert!(!file.is_test[idx]);
    }
}

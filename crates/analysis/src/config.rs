//! Allow/deny configuration: `ch-lint.toml` plus command-line overrides.
//!
//! The file format is a deliberately tiny TOML subset — one assignment per
//! line, `#` comments, and two section headers:
//!
//! ```toml
//! [rules]
//! default-hasher = "deny"
//! missing-decode = "allow"
//!
//! [scoped-allow]
//! # Suppress one rule for one file (or directory) only. Repeatable.
//! nondeterminism = "crates/fleet/src/telemetry.rs"
//! ```
//!
//! `[rules]` sets a rule's level workspace-wide; `[scoped-allow]` keeps a
//! rule denied everywhere *except* the named workspace-relative path — the
//! config-level counterpart of a source-level `// ch-lint: allow(...)`
//! comment, for allowances that are architectural rather than one-line
//! (e.g. "only the fleet's telemetry module may read the wall clock").
//! Command-line `--allow <rule>` / `--deny <rule>` flags override the file.

use crate::rules::ALL_RULES;

/// What to do with a rule's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Report and fail the run.
    Deny,
    /// Skip the rule entirely.
    Allow,
}

/// Effective per-rule levels. Every rule defaults to [`Level::Deny`].
#[derive(Debug, Clone)]
pub struct Config {
    levels: Vec<(&'static str, Level)>,
    /// `(rule, workspace-relative path)` pairs from `[scoped-allow]`: the
    /// rule stays denied everywhere except under that file or directory.
    scoped_allows: Vec<(&'static str, String)>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            levels: ALL_RULES.iter().map(|r| (*r, Level::Deny)).collect(),
            scoped_allows: Vec::new(),
        }
    }
}

impl Config {
    /// The level for `rule` (unknown rules are denied — they will already
    /// have been rejected during parsing).
    pub fn level(&self, rule: &str) -> Level {
        self.levels
            .iter()
            .find(|(r, _)| *r == rule)
            .map_or(Level::Deny, |(_, l)| *l)
    }

    /// `true` if the rule's findings should be reported.
    pub fn is_denied(&self, rule: &str) -> bool {
        self.level(rule) == Level::Deny
    }

    /// Sets a rule's level, validating the rule id.
    pub fn set(&mut self, rule: &str, level: Level) -> Result<(), String> {
        match self.levels.iter_mut().find(|(r, _)| *r == rule) {
            Some(slot) => {
                slot.1 = level;
                Ok(())
            }
            None => Err(format!(
                "unknown rule `{rule}` (expected one of: {})",
                ALL_RULES.join(", ")
            )),
        }
    }

    /// Adds a scoped allowance: `rule` is suppressed for findings whose
    /// path is `scope` or lies under it (when `scope` is a directory).
    pub fn allow_scoped(&mut self, rule: &str, scope: &str) -> Result<(), String> {
        let Some(canonical) = ALL_RULES.iter().find(|r| **r == rule) else {
            return Err(format!(
                "unknown rule `{rule}` (expected one of: {})",
                ALL_RULES.join(", ")
            ));
        };
        if scope.is_empty() || scope.starts_with('/') || scope.contains("..") {
            return Err(format!(
                "scoped-allow path must be workspace-relative, got \"{scope}\""
            ));
        }
        self.scoped_allows.push((canonical, scope.to_string()));
        Ok(())
    }

    /// The configured `(rule, path)` scoped allowances, in file order.
    pub fn scoped_allows(&self) -> &[(&'static str, String)] {
        &self.scoped_allows
    }

    /// `true` if a `[scoped-allow]` entry suppresses `rule` at `path`
    /// (`path` is workspace-relative, as reported in findings).
    pub fn is_path_allowed(&self, rule: &str, path: &str) -> bool {
        self.scoped_allows.iter().any(|(r, scope)| {
            *r == rule
                && (path == scope
                    || path
                        .strip_prefix(scope.as_str())
                        .is_some_and(|rest| rest.starts_with('/')))
        })
    }

    /// Applies a `ch-lint.toml` document on top of the current levels.
    pub fn apply_toml(&mut self, text: &str) -> Result<(), String> {
        #[derive(PartialEq)]
        enum Section {
            Rules,
            ScopedAllow,
        }
        let mut section = Section::Rules;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                section = match &line[1..line.len() - 1] {
                    "rules" => Section::Rules,
                    "scoped-allow" => Section::ScopedAllow,
                    other => {
                        return Err(format!(
                            "ch-lint.toml:{}: unknown section `[{other}]` \
                             (expected [rules] or [scoped-allow])",
                            lineno + 1
                        ))
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "ch-lint.toml:{}: expected `rule = \"value\"`",
                    lineno + 1
                ));
            };
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            match section {
                Section::Rules => {
                    let level = match value {
                        "deny" => Level::Deny,
                        "allow" => Level::Allow,
                        other => {
                            return Err(format!(
                                "ch-lint.toml:{}: level must be \"allow\" or \"deny\", \
                                 got \"{other}\"",
                                lineno + 1
                            ))
                        }
                    };
                    self.set(key, level)
                        .map_err(|e| format!("ch-lint.toml:{}: {e}", lineno + 1))?;
                }
                Section::ScopedAllow => {
                    self.allow_scoped(key, value)
                        .map_err(|e| format!("ch-lint.toml:{}: {e}", lineno + 1))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_denies_every_rule() {
        let cfg = Config::default();
        for rule in ALL_RULES {
            assert!(cfg.is_denied(rule), "{rule} should default to deny");
        }
    }

    #[test]
    fn toml_subset_parses() {
        let mut cfg = Config::default();
        cfg.apply_toml(
            "# comment\n[rules]\nmissing-decode = \"allow\" # trailing\npanic-path = \"deny\"\n",
        )
        .unwrap();
        assert!(!cfg.is_denied("missing-decode"));
        assert!(cfg.is_denied("panic-path"));
        assert!(cfg.is_denied("default-hasher"));
    }

    #[test]
    fn unknown_rule_rejected() {
        let mut cfg = Config::default();
        let err = cfg.apply_toml("no-such-rule = \"deny\"\n").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = cfg.set("bogus", Level::Allow).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn bad_level_rejected() {
        let mut cfg = Config::default();
        let err = cfg.apply_toml("panic-path = \"warn\"\n").unwrap_err();
        assert!(err.contains("allow"), "{err}");
    }

    #[test]
    fn scoped_allow_matches_file_and_directory_scopes() {
        let mut cfg = Config::default();
        cfg.apply_toml(
            "[scoped-allow]\n\
             nondeterminism = \"crates/fleet/src/telemetry.rs\"\n\
             panic-path = \"crates/fleet/src\"\n",
        )
        .unwrap();
        // Exact file scope.
        assert!(cfg.is_path_allowed("nondeterminism", "crates/fleet/src/telemetry.rs"));
        assert!(!cfg.is_path_allowed("nondeterminism", "crates/fleet/src/engine.rs"));
        // The rule stays denied overall; only the path is exempt.
        assert!(cfg.is_denied("nondeterminism"));
        // Directory scope covers files underneath, not lookalike prefixes.
        assert!(cfg.is_path_allowed("panic-path", "crates/fleet/src/pool.rs"));
        assert!(!cfg.is_path_allowed("panic-path", "crates/fleet/srcs/pool.rs"));
        // Other rules at the allowed path are untouched.
        assert!(!cfg.is_path_allowed("default-hasher", "crates/fleet/src/telemetry.rs"));
    }

    #[test]
    fn scoped_allow_rejects_unknown_rules_and_bad_paths() {
        let mut cfg = Config::default();
        let err = cfg
            .apply_toml("[scoped-allow]\nno-such-rule = \"crates/x\"\n")
            .unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = cfg
            .apply_toml("[scoped-allow]\nnondeterminism = \"/abs/path\"\n")
            .unwrap_err();
        assert!(err.contains("workspace-relative"), "{err}");
        let err = cfg
            .apply_toml("[scoped-allow]\nnondeterminism = \"a/../b\"\n")
            .unwrap_err();
        assert!(err.contains("workspace-relative"), "{err}");
    }

    #[test]
    fn unknown_section_rejected() {
        let mut cfg = Config::default();
        let err = cfg.apply_toml("[mystery]\nfoo = \"bar\"\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
    }
}

//! Allow/deny configuration: `ch-lint.toml` plus command-line overrides.
//!
//! The file format is a deliberately tiny TOML subset — one `rule = "level"`
//! assignment per line, `#` comments, optional `[rules]` section header:
//!
//! ```toml
//! [rules]
//! default-hasher = "deny"
//! missing-decode = "allow"
//! ```
//!
//! Command-line `--allow <rule>` / `--deny <rule>` flags override the file.

use crate::rules::ALL_RULES;

/// What to do with a rule's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Report and fail the run.
    Deny,
    /// Skip the rule entirely.
    Allow,
}

/// Effective per-rule levels. Every rule defaults to [`Level::Deny`].
#[derive(Debug, Clone)]
pub struct Config {
    levels: Vec<(&'static str, Level)>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            levels: ALL_RULES.iter().map(|r| (*r, Level::Deny)).collect(),
        }
    }
}

impl Config {
    /// The level for `rule` (unknown rules are denied — they will already
    /// have been rejected during parsing).
    pub fn level(&self, rule: &str) -> Level {
        self.levels
            .iter()
            .find(|(r, _)| *r == rule)
            .map_or(Level::Deny, |(_, l)| *l)
    }

    /// `true` if the rule's findings should be reported.
    pub fn is_denied(&self, rule: &str) -> bool {
        self.level(rule) == Level::Deny
    }

    /// Sets a rule's level, validating the rule id.
    pub fn set(&mut self, rule: &str, level: Level) -> Result<(), String> {
        match self.levels.iter_mut().find(|(r, _)| *r == rule) {
            Some(slot) => {
                slot.1 = level;
                Ok(())
            }
            None => Err(format!(
                "unknown rule `{rule}` (expected one of: {})",
                ALL_RULES.join(", ")
            )),
        }
    }

    /// Applies a `ch-lint.toml` document on top of the current levels.
    pub fn apply_toml(&mut self, text: &str) -> Result<(), String> {
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() || (line.starts_with('[') && line.ends_with(']')) {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "ch-lint.toml:{}: expected `rule = \"level\"`",
                    lineno + 1
                ));
            };
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            let level = match value {
                "deny" => Level::Deny,
                "allow" => Level::Allow,
                other => {
                    return Err(format!(
                        "ch-lint.toml:{}: level must be \"allow\" or \"deny\", got \"{other}\"",
                        lineno + 1
                    ))
                }
            };
            self.set(key, level)
                .map_err(|e| format!("ch-lint.toml:{}: {e}", lineno + 1))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_denies_every_rule() {
        let cfg = Config::default();
        for rule in ALL_RULES {
            assert!(cfg.is_denied(rule), "{rule} should default to deny");
        }
    }

    #[test]
    fn toml_subset_parses() {
        let mut cfg = Config::default();
        cfg.apply_toml(
            "# comment\n[rules]\nmissing-decode = \"allow\" # trailing\npanic-path = \"deny\"\n",
        )
        .unwrap();
        assert!(!cfg.is_denied("missing-decode"));
        assert!(cfg.is_denied("panic-path"));
        assert!(cfg.is_denied("default-hasher"));
    }

    #[test]
    fn unknown_rule_rejected() {
        let mut cfg = Config::default();
        let err = cfg.apply_toml("no-such-rule = \"deny\"\n").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = cfg.set("bogus", Level::Allow).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn bad_level_rejected() {
        let mut cfg = Config::default();
        let err = cfg.apply_toml("panic-path = \"warn\"\n").unwrap_err();
        assert!(err.contains("allow"), "{err}");
    }
}

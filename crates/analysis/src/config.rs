//! Allow/deny configuration: `ch-lint.toml` plus command-line overrides.
//!
//! The file format is a deliberately tiny TOML subset — one assignment per
//! line, `#` comments, and two section headers:
//!
//! ```toml
//! [rules]
//! default-hasher = "deny"
//! missing-decode = "allow"
//!
//! [scoped-allow]
//! # Suppress one rule for one file (or directory) only. Repeatable.
//! nondeterminism = "crates/fleet/src/telemetry.rs"
//!
//! [hot-path]
//! # Roots of the R6 hot-path-alloc reachability scan. Repeatable; the
//! # scope is a file (that function only) or a directory (every function
//! # of that name underneath — how one root covers all impls of a trait
//! # method).
//! root = "crates/wifi/src/codec.rs::encode_into"
//! root = "crates/attack/src::respond_to_probe_into"
//! ```
//!
//! `[rules]` sets a rule's level workspace-wide; `[scoped-allow]` keeps a
//! rule denied everywhere *except* the named workspace-relative path — the
//! config-level counterpart of a source-level `// ch-lint: allow(...)`
//! comment, for allowances that are architectural rather than one-line
//! (e.g. "only the fleet's telemetry module may read the wall clock").
//! Command-line `--allow <rule>` / `--deny <rule>` flags override the file.

use crate::rules::ALL_RULES;

/// One `[hot-path]` root: the function `name` defined at (or under) the
/// workspace-relative `scope` path seeds the R6 reachability scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPathRoot {
    pub scope: String,
    pub name: String,
}

/// What to do with a rule's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Report and fail the run.
    Deny,
    /// Skip the rule entirely.
    Allow,
}

/// Effective per-rule levels. Every rule defaults to [`Level::Deny`].
#[derive(Debug, Clone)]
pub struct Config {
    levels: Vec<(&'static str, Level)>,
    /// `(rule, workspace-relative path)` pairs from `[scoped-allow]`: the
    /// rule stays denied everywhere except under that file or directory.
    scoped_allows: Vec<(&'static str, String)>,
    /// `[hot-path]` roots seeding the R6 reachability scan.
    hot_path_roots: Vec<HotPathRoot>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            levels: ALL_RULES.iter().map(|r| (*r, Level::Deny)).collect(),
            scoped_allows: Vec::new(),
            hot_path_roots: Vec::new(),
        }
    }
}

impl Config {
    /// The level for `rule` (unknown rules are denied — they will already
    /// have been rejected during parsing).
    pub fn level(&self, rule: &str) -> Level {
        self.levels
            .iter()
            .find(|(r, _)| *r == rule)
            .map_or(Level::Deny, |(_, l)| *l)
    }

    /// `true` if the rule's findings should be reported.
    pub fn is_denied(&self, rule: &str) -> bool {
        self.level(rule) == Level::Deny
    }

    /// Sets a rule's level, validating the rule id.
    pub fn set(&mut self, rule: &str, level: Level) -> Result<(), String> {
        match self.levels.iter_mut().find(|(r, _)| *r == rule) {
            Some(slot) => {
                slot.1 = level;
                Ok(())
            }
            None => Err(format!(
                "unknown rule `{rule}` (expected one of: {})",
                ALL_RULES.join(", ")
            )),
        }
    }

    /// Adds a scoped allowance: `rule` is suppressed for findings whose
    /// path is `scope` or lies under it (when `scope` is a directory).
    pub fn allow_scoped(&mut self, rule: &str, scope: &str) -> Result<(), String> {
        let Some(canonical) = ALL_RULES.iter().find(|r| **r == rule) else {
            return Err(format!(
                "unknown rule `{rule}` (expected one of: {})",
                ALL_RULES.join(", ")
            ));
        };
        if scope.is_empty() || scope.starts_with('/') || scope.contains("..") {
            return Err(format!(
                "scoped-allow path must be workspace-relative, got \"{scope}\""
            ));
        }
        self.scoped_allows.push((canonical, scope.to_string()));
        Ok(())
    }

    /// The configured `(rule, path)` scoped allowances, in file order.
    pub fn scoped_allows(&self) -> &[(&'static str, String)] {
        &self.scoped_allows
    }

    /// Adds an R6 root, validating the `<scope>::<fn-name>` shape.
    pub fn add_hot_path_root(&mut self, value: &str) -> Result<(), String> {
        let Some((scope, name)) = value.rsplit_once("::") else {
            return Err(format!(
                "hot-path root must be `<path>::<fn-name>`, got \"{value}\""
            ));
        };
        if scope.is_empty() || scope.starts_with('/') || scope.contains("..") {
            return Err(format!(
                "hot-path scope must be workspace-relative, got \"{scope}\""
            ));
        }
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(format!(
                "hot-path function name must be an identifier, got \"{name}\""
            ));
        }
        self.hot_path_roots.push(HotPathRoot {
            scope: scope.to_string(),
            name: name.to_string(),
        });
        Ok(())
    }

    /// The configured `[hot-path]` roots, in file order.
    pub fn hot_path_roots(&self) -> &[HotPathRoot] {
        &self.hot_path_roots
    }

    /// `true` if a `[scoped-allow]` entry suppresses `rule` at `path`
    /// (`path` is workspace-relative, as reported in findings).
    pub fn is_path_allowed(&self, rule: &str, path: &str) -> bool {
        self.scoped_allows.iter().any(|(r, scope)| {
            *r == rule
                && (path == scope
                    || path
                        .strip_prefix(scope.as_str())
                        .is_some_and(|rest| rest.starts_with('/')))
        })
    }

    /// Applies a `ch-lint.toml` document on top of the current levels.
    pub fn apply_toml(&mut self, text: &str) -> Result<(), String> {
        #[derive(PartialEq)]
        enum Section {
            Rules,
            ScopedAllow,
            HotPath,
        }
        let mut section = Section::Rules;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                section = match &line[1..line.len() - 1] {
                    "rules" => Section::Rules,
                    "scoped-allow" => Section::ScopedAllow,
                    "hot-path" => Section::HotPath,
                    other => {
                        return Err(format!(
                            "ch-lint.toml:{}: unknown section `[{other}]` \
                             (expected [rules], [scoped-allow] or [hot-path])",
                            lineno + 1
                        ))
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "ch-lint.toml:{}: expected `rule = \"value\"`",
                    lineno + 1
                ));
            };
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            match section {
                Section::Rules => {
                    let level = match value {
                        "deny" => Level::Deny,
                        "allow" => Level::Allow,
                        other => {
                            return Err(format!(
                                "ch-lint.toml:{}: level must be \"allow\" or \"deny\", \
                                 got \"{other}\"",
                                lineno + 1
                            ))
                        }
                    };
                    self.set(key, level)
                        .map_err(|e| format!("ch-lint.toml:{}: {e}", lineno + 1))?;
                }
                Section::ScopedAllow => {
                    self.allow_scoped(key, value)
                        .map_err(|e| format!("ch-lint.toml:{}: {e}", lineno + 1))?;
                }
                Section::HotPath => {
                    if key != "root" {
                        return Err(format!(
                            "ch-lint.toml:{}: [hot-path] entries are \
                             `root = \"<path>::<fn-name>\"`, got key `{key}`",
                            lineno + 1
                        ));
                    }
                    self.add_hot_path_root(value)
                        .map_err(|e| format!("ch-lint.toml:{}: {e}", lineno + 1))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_denies_every_rule() {
        let cfg = Config::default();
        for rule in ALL_RULES {
            assert!(cfg.is_denied(rule), "{rule} should default to deny");
        }
    }

    #[test]
    fn toml_subset_parses() {
        let mut cfg = Config::default();
        cfg.apply_toml(
            "# comment\n[rules]\nmissing-decode = \"allow\" # trailing\npanic-path = \"deny\"\n",
        )
        .unwrap();
        assert!(!cfg.is_denied("missing-decode"));
        assert!(cfg.is_denied("panic-path"));
        assert!(cfg.is_denied("default-hasher"));
    }

    #[test]
    fn unknown_rule_rejected() {
        let mut cfg = Config::default();
        let err = cfg.apply_toml("no-such-rule = \"deny\"\n").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = cfg.set("bogus", Level::Allow).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn bad_level_rejected() {
        let mut cfg = Config::default();
        let err = cfg.apply_toml("panic-path = \"warn\"\n").unwrap_err();
        assert!(err.contains("allow"), "{err}");
    }

    #[test]
    fn scoped_allow_matches_file_and_directory_scopes() {
        let mut cfg = Config::default();
        cfg.apply_toml(
            "[scoped-allow]\n\
             nondeterminism = \"crates/fleet/src/telemetry.rs\"\n\
             panic-path = \"crates/fleet/src\"\n",
        )
        .unwrap();
        // Exact file scope.
        assert!(cfg.is_path_allowed("nondeterminism", "crates/fleet/src/telemetry.rs"));
        assert!(!cfg.is_path_allowed("nondeterminism", "crates/fleet/src/engine.rs"));
        // The rule stays denied overall; only the path is exempt.
        assert!(cfg.is_denied("nondeterminism"));
        // Directory scope covers files underneath, not lookalike prefixes.
        assert!(cfg.is_path_allowed("panic-path", "crates/fleet/src/pool.rs"));
        assert!(!cfg.is_path_allowed("panic-path", "crates/fleet/srcs/pool.rs"));
        // Other rules at the allowed path are untouched.
        assert!(!cfg.is_path_allowed("default-hasher", "crates/fleet/src/telemetry.rs"));
    }

    #[test]
    fn scoped_allow_rejects_unknown_rules_and_bad_paths() {
        let mut cfg = Config::default();
        let err = cfg
            .apply_toml("[scoped-allow]\nno-such-rule = \"crates/x\"\n")
            .unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = cfg
            .apply_toml("[scoped-allow]\nnondeterminism = \"/abs/path\"\n")
            .unwrap_err();
        assert!(err.contains("workspace-relative"), "{err}");
        let err = cfg
            .apply_toml("[scoped-allow]\nnondeterminism = \"a/../b\"\n")
            .unwrap_err();
        assert!(err.contains("workspace-relative"), "{err}");
    }

    #[test]
    fn hot_path_roots_parse_and_validate() {
        let mut cfg = Config::default();
        cfg.apply_toml(
            "[hot-path]\n\
             root = \"crates/wifi/src/codec.rs::encode_into\"\n\
             root = \"crates/attack/src::respond_to_probe_into\"\n",
        )
        .unwrap();
        assert_eq!(
            cfg.hot_path_roots(),
            [
                HotPathRoot {
                    scope: "crates/wifi/src/codec.rs".to_string(),
                    name: "encode_into".to_string(),
                },
                HotPathRoot {
                    scope: "crates/attack/src".to_string(),
                    name: "respond_to_probe_into".to_string(),
                },
            ]
        );

        let err = cfg
            .apply_toml("[hot-path]\nroot = \"no-separator\"\n")
            .unwrap_err();
        assert!(err.contains("<path>::<fn-name>"), "{err}");
        let err = cfg
            .apply_toml("[hot-path]\nroot = \"/abs/path.rs::f\"\n")
            .unwrap_err();
        assert!(err.contains("workspace-relative"), "{err}");
        let err = cfg
            .apply_toml("[hot-path]\nroot = \"crates/x.rs::not an ident\"\n")
            .unwrap_err();
        assert!(err.contains("identifier"), "{err}");
        let err = cfg
            .apply_toml("[hot-path]\nwrong-key = \"crates/x.rs::f\"\n")
            .unwrap_err();
        assert!(err.contains("root"), "{err}");
    }

    #[test]
    fn unknown_section_rejected() {
        let mut cfg = Config::default();
        let err = cfg.apply_toml("[mystery]\nfoo = \"bar\"\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
    }
}

//! # ch-analysis — the City-Hunter static-analysis pass
//!
//! The simulation's headline claim is *bit-for-bit reproducibility*: the
//! same seed regenerates every table of the paper. `ch-lint` (this crate's
//! binary) is the workspace gate that keeps the properties behind that
//! claim true by construction:
//!
//! * **R1 `default-hasher`** — determinism-critical crates must not build
//!   `HashMap`/`HashSet` on std's randomly seeded hasher (iteration order
//!   would differ per process); they use [`ch_sim::DetHashMap`]-style
//!   collections instead.
//! * **R2 `nondeterminism`** — no wall-clock reads (`Instant::now`,
//!   `SystemTime::now`) or ambient randomness (`thread_rng`) outside
//!   `ch-bench` and test code.
//! * **R3 `panic-path`** — the frame codec and attack engine crates
//!   (`ch-wifi`, `ch-arc`, `ch-attack`) keep library code panic-free:
//!   malformed input must surface as `Result`, not a crash mid-campaign.
//! * **R4 `missing-decode`** — every public wire-format type in
//!   `ch-wifi::frame`/`ch-wifi::ie` that can encode must also be able to
//!   decode, so formats round-trip.
//!
//! Run it with `cargo run -p ch-analysis --bin ch-lint`. A finding is
//! suppressed by a trailing or directly preceding
//! `// ch-lint: allow(<rule>)` comment; rules can be globally downgraded
//! in `ch-lint.toml` or with `--allow <rule>` on the command line.
//!
//! The analyzer is dependency-free by design (the build must work in a
//! hermetic environment): [`lexer`] is a small hand-rolled Rust lexer
//! that understands exactly as much of the language as the token-pattern
//! rules in [`rules`] require — comments, strings, lifetimes and
//! `#[cfg(test)]` regions.
//!
//! [`ch_sim::DetHashMap`]: ../ch_sim/collections/type.DetHashMap.html

pub mod config;
pub mod lexer;
pub mod rules;
pub mod workspace;

/// Where a file sits in its crate, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Under `src/`: production code, all rules apply.
    Library,
    /// Under `tests/`, `benches/` or `examples/`: R1–R3 exempt.
    TestTarget,
}

/// Per-file context handed to the rules.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Package name from the owning crate's `Cargo.toml` (e.g. `ch-sim`).
    pub crate_name: String,
    /// Path as it should appear in diagnostics (workspace-relative).
    pub path: String,
    pub kind: FileKind,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        write!(f, "  --> {}:{}", self.path, self.line)
    }
}

/// Lexes and checks one source file. The entry point the fixture tests
/// drive directly; [`workspace::analyze_workspace`] wraps it with crate
/// discovery.
pub fn analyze_source(ctx: &FileContext, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    rules::check_file(ctx, &lexed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_renders_like_rustc() {
        let f = Finding {
            rule: "panic-path",
            path: "crates/wifi/src/ie.rs".into(),
            line: 217,
            message: "`.expect()` in library code".into(),
        };
        let text = f.to_string();
        assert!(text.starts_with("error[panic-path]:"), "{text}");
        assert!(text.contains("crates/wifi/src/ie.rs:217"), "{text}");
    }
}

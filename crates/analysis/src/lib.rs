//! # ch-analysis — the City-Hunter static-analysis pass
//!
//! The simulation's headline claim is *bit-for-bit reproducibility*: the
//! same seed regenerates every table of the paper. `ch-lint` (this crate's
//! binary) is the workspace gate that keeps the properties behind that
//! claim true by construction:
//!
//! * **R1 `default-hasher`** — determinism-critical crates must not build
//!   `HashMap`/`HashSet` on std's randomly seeded hasher (iteration order
//!   would differ per process); they use [`ch_sim::DetHashMap`]-style
//!   collections instead.
//! * **R2 `nondeterminism`** — no wall-clock reads (`Instant::now`,
//!   `SystemTime::now`) or ambient randomness (`thread_rng`) outside
//!   `ch-bench` and test code.
//! * **R3 `panic-path`** — the frame codec and attack engine crates
//!   (`ch-wifi`, `ch-arc`, `ch-attack`) keep library code panic-free:
//!   malformed input must surface as `Result`, not a crash mid-campaign.
//! * **R4 `missing-decode`** — every public wire-format type in
//!   `ch-wifi::frame`/`ch-wifi::ie` that can encode must also be able to
//!   decode, so formats round-trip.
//! * **R5 `ssid-clone`** — no `.clone()` of SSID-named values in the
//!   probe hot path's crates; the hot path works on interned ids.
//! * **R6 `hot-path-alloc`** — no allocating construct in any function
//!   transitively reachable from the `[hot-path]` roots configured in
//!   `ch-lint.toml`, computed over the [workspace call
//!   graph](index::WorkspaceIndex) — cold branches the perf benchmark
//!   never executes included.
//! * **R7 `seed-discipline`** — `SimRng`/`FaultRng` seeds in the
//!   determinism crates come from `derive_seed`, a parent `fork`, or a
//!   config field, never an integer literal or a reused expression.
//!
//! Run it with `cargo run -p ch-analysis --bin ch-lint` (`--format json`
//! for the machine-readable CI artifact, `--explain <rule>` for a rule's
//! rationale). A finding is suppressed by a trailing or directly
//! preceding `// ch-lint: allow(<rule>)` comment; rules can be globally
//! downgraded in `ch-lint.toml` or with `--allow <rule>` on the command
//! line.
//!
//! The analyzer is dependency-free by design (the build must work in a
//! hermetic environment): [`lexer`] is a small hand-rolled Rust lexer
//! that understands exactly as much of the language as the rules in
//! [`rules`] require — comments, strings, lifetimes and `#[cfg(test)]`
//! regions — and [`index`] derives the symbol table and approximate
//! call graph from those tokens alone.
//!
//! [`ch_sim::DetHashMap`]: ../ch_sim/collections/type.DetHashMap.html

pub mod config;
pub mod index;
pub mod lexer;
pub mod rules;
pub mod workspace;

/// Where a file sits in its crate, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Under `src/`: production code, all rules apply.
    Library,
    /// Under `tests/`, `benches/` or `examples/`: R1–R3 exempt.
    TestTarget,
}

/// Per-file context handed to the rules.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Package name from the owning crate's `Cargo.toml` (e.g. `ch-sim`).
    pub crate_name: String,
    /// Path as it should appear in diagnostics (workspace-relative).
    pub path: String,
    pub kind: FileKind,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        write!(f, "  --> {}:{}", self.path, self.line)
    }
}

/// Lexes and checks one source file with the per-file rules (R1–R5, R7).
/// The entry point the single-file fixture tests drive directly;
/// [`analyze_files`] adds the workspace-level pass.
pub fn analyze_source(ctx: &FileContext, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    rules::check_file(ctx, &lexed)
}

/// The two-pass analyzer over a set of sources: pass 1 lexes every file
/// and builds the [workspace symbol index](index::WorkspaceIndex); pass 2
/// runs the per-file rules plus the index-aware rules (R6
/// `hot-path-alloc`, whose roots come from `config`'s `[hot-path]`
/// section). [`workspace::analyze_workspace`] wraps this with crate
/// discovery; multi-file fixture tests drive it directly.
pub fn analyze_files(files: &[(FileContext, String)], config: &config::Config) -> Vec<Finding> {
    analyze_files_with_deps(files, &[], config)
}

/// [`analyze_files`] with a crate dependency list (`(crate, direct deps)`
/// pairs): call-graph edges then respect the dependency direction, so a
/// name collision with a crate nothing links against cannot fabricate
/// hot-path reachability. An empty list keeps every edge.
pub fn analyze_files_with_deps(
    files: &[(FileContext, String)],
    deps: &[(String, Vec<String>)],
    config: &config::Config,
) -> Vec<Finding> {
    let lexed: Vec<(FileContext, lexer::LexedFile)> = files
        .iter()
        .map(|(ctx, source)| (ctx.clone(), lexer::lex(source)))
        .collect();
    let mut findings = Vec::new();
    for (ctx, file) in &lexed {
        findings.extend(rules::check_file(ctx, file));
    }
    let index = index::WorkspaceIndex::build_with_deps(&lexed, deps);
    findings.extend(rules::check_workspace(
        &lexed,
        &index,
        config.hot_path_roots(),
    ));
    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_renders_like_rustc() {
        let f = Finding {
            rule: "panic-path",
            path: "crates/wifi/src/ie.rs".into(),
            line: 217,
            message: "`.expect()` in library code".into(),
        };
        let text = f.to_string();
        assert!(text.starts_with("error[panic-path]:"), "{text}");
        assert!(text.contains("crates/wifi/src/ie.rs:217"), "{text}");
    }
}

//! Workspace discovery and the full-repo analysis driver.
//!
//! `ch-lint` walks every crate under `<root>/crates/` (the workspace
//! members; `vendor/` stand-ins are excluded from the workspace and from
//! linting), classifies each `.rs` file as library or test-target code,
//! and runs the rules.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::{analyze_files_with_deps, FileContext, FileKind, Finding};

/// Summary of one analysis run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub crates_scanned: usize,
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// The keys of a crate's `[dependencies]` section (direct deps only —
/// call-graph reachability is transitive through each crate's own edges).
fn direct_dependencies(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if in_deps && !line.is_empty() && !line.starts_with('#') {
            // `ch-sim.workspace = true` / `ch-sim = { path = … }`.
            let key: String = line
                .chars()
                .take_while(|c| !matches!(c, '.' | '=' | ' ' | '\t'))
                .collect();
            if !key.is_empty() {
                out.push(key);
            }
        }
    }
    out
}

/// The `name = "…"` of a crate's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// diagnostics.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Analyzes every workspace crate under `root`, honouring `config`.
///
/// Two passes: first every file is collected (so the symbol index spans
/// the whole workspace), then [`analyze_files`] lexes, indexes and runs
/// the rules. Config filtering (levels, `[scoped-allow]`) applies last.
pub fn analyze_workspace(root: &Path, config: &Config) -> Result<Report, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();

    let mut report = Report::default();
    let mut files: Vec<(FileContext, String)> = Vec::new();
    let mut deps: Vec<(String, Vec<String>)> = Vec::new();
    for crate_dir in crate_dirs {
        let manifest = fs::read_to_string(crate_dir.join("Cargo.toml"))
            .map_err(|e| format!("cannot read {}: {e}", crate_dir.display()))?;
        let Some(crate_name) = package_name(&manifest) else {
            continue; // not a package (e.g. a nested workspace stub)
        };
        deps.push((crate_name.clone(), direct_dependencies(&manifest)));
        report.crates_scanned += 1;
        for (subdir, kind) in [
            ("src", FileKind::Library),
            ("tests", FileKind::TestTarget),
            ("benches", FileKind::TestTarget),
            ("examples", FileKind::TestTarget),
        ] {
            for file in rust_files(&crate_dir.join(subdir)) {
                let source = fs::read_to_string(&file)
                    .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
                let rel = file
                    .strip_prefix(root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                report.files_scanned += 1;
                files.push((
                    FileContext {
                        crate_name: crate_name.clone(),
                        path: rel,
                        kind,
                    },
                    source,
                ));
            }
        }
    }
    report.findings = analyze_files_with_deps(&files, &deps, config)
        .into_iter()
        .filter(|f| config.is_denied(f.rule) && !config.is_path_allowed(f.rule, &f.path))
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_package_section_only() {
        let manifest = "\
[package]
name = \"ch-example\"

[dependencies]
name = \"not-this-one\"
";
        assert_eq!(package_name(manifest).as_deref(), Some("ch-example"));
        assert_eq!(package_name("[workspace]\n"), None);
    }

    #[test]
    fn finds_this_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("repo has a workspace root");
        assert!(root.join("crates").is_dir(), "{}", root.display());
    }
}

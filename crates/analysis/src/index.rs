//! Pass 1 of the analyzer: a workspace symbol index.
//!
//! The per-file rules (R1–R5, R7) are token patterns; the hot-path rule
//! (R6) is a *workspace* property — "no allocation in any function the
//! probe loop can reach" — so it needs to know, across every crate, which
//! functions exist and who calls whom. This module extracts that from the
//! lexer's token streams:
//!
//! * [`functions`] finds every `fn` definition in a file, with its
//!   enclosing `impl` type (the *self* type — for `impl Attacker for
//!   KarmaAttacker`, `KarmaAttacker`) and the token range of its body;
//! * [`calls_in`] lists the calls a body makes, classified as bare
//!   (`helper(…)`), qualified (`Type::method(…)` / `module::func(…)`) or
//!   method-style (`value.method(…)`);
//! * [`WorkspaceIndex`] stitches those into an approximate call graph and
//!   answers reachability queries from configured hot-path roots.
//!
//! The graph is deliberately **conservative and name-based** — there is no
//! type inference:
//!
//! * a method call `x.select(…)` gets an edge to *every* workspace method
//!   named `select`, whatever type it is defined on;
//! * a qualified call `Type::new(…)` resolves by impl-type when the index
//!   knows a matching method, and falls back to free functions of that
//!   name (covers `module::func` paths);
//! * calls that resolve to nothing (std, closures, trait-object dispatch
//!   through `dyn`/generics where the method name never appears at the
//!   call site) produce no edges — this is the approximation's blind spot
//!   and is documented in DESIGN §8.
//!
//! Over-approximation yields false reachability (pinned with allow
//! comments where it bites); under-approximation is limited to dispatch a
//! token stream cannot see.

use std::collections::HashMap;

use crate::lexer::{LexedFile, Token};
use crate::{FileContext, FileKind};

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the owning file in the slice handed to
    /// [`WorkspaceIndex::build`].
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// The *self* type of the enclosing `impl`, if any (`None` for free
    /// functions and trait declarations' default methods).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range `[start, end)` of the body, braces included.
    pub body: (usize, usize),
    /// `true` when the definition sits inside a `#[cfg(test)] mod` or a
    /// test-target file: such functions never carry hot-path edges.
    pub is_test: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` — resolves to free functions.
    Bare,
    /// `Qualifier::name(…)` — resolves by impl-type, falling back to free
    /// functions (module paths).
    Qualified(String),
    /// `value.name(…)` — resolves to every method of that name.
    Method,
}

/// One call made inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub name: String,
    pub kind: CallKind,
    pub line: u32,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "loop", "return", "fn", "in", "as", "move", "unsafe",
    "where", "impl", "dyn", "let", "mut", "ref", "pub", "use", "mod", "crate", "super", "self",
    "Self",
];

/// Extracts every `fn` definition from a lexed file.
///
/// `file_idx` is recorded into each [`FnDef::file`]; test-target files and
/// `#[cfg(test)]` regions mark their definitions [`FnDef::is_test`].
pub fn functions(ctx: &FileContext, file: &LexedFile, file_idx: usize) -> Vec<FnDef> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    // `impl` self-type for every token index (innermost impl wins).
    let impl_of = impl_regions(toks);
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident() != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.ident() else {
            i += 1;
            continue;
        };
        // Find the body's opening brace, skipping the signature. A `;`
        // first means a trait-method declaration or extern — no body.
        let mut j = i + 2;
        let mut angle_depth = 0i32;
        let body_open = loop {
            let Some(t) = toks.get(j) else {
                break None;
            };
            if t.is_punct('<') {
                angle_depth += 1;
            } else if t.is_punct('>') {
                angle_depth -= 1;
            } else if t.is_punct(';') && angle_depth <= 0 {
                break None;
            } else if t.is_punct('{') && angle_depth <= 0 {
                break Some(j);
            }
            j += 1;
        };
        let Some(body_open) = body_open else {
            i += 2;
            continue;
        };
        let body_close = skip_balanced(toks, body_open, '{', '}').unwrap_or(toks.len());
        out.push(FnDef {
            file: file_idx,
            name: name.to_string(),
            impl_type: impl_of[i].map(str::to_string),
            line: toks[i].line,
            body: (body_open, body_close),
            is_test: ctx.kind == FileKind::TestTarget || file.is_test[i],
        });
        // Nested fns are rare; recursing into the body keeps them indexed.
        i = body_open + 1;
    }
    out
}

/// For each token index, the owner type of the innermost enclosing `impl`
/// (self type) or `trait` (trait name) block — `None` outside both.
fn impl_regions(toks: &[Token]) -> Vec<Option<&str>> {
    let mut out = vec![None; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].ident() == Some("trait") {
            // `trait Name<…>: Super { … }` — default methods belong to
            // the trait; the name is the first ident after the keyword.
            let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
                i += 1;
                continue;
            };
            let mut j = i + 2;
            let body_open = loop {
                let Some(t) = toks.get(j) else {
                    break None;
                };
                if t.is_punct('<') {
                    j = match skip_balanced(toks, j, '<', '>') {
                        Some(k) => k,
                        None => break None,
                    };
                    continue;
                }
                if t.is_punct(';') {
                    break None; // `trait Alias = …;` or opaque forms
                }
                if t.is_punct('{') {
                    break Some(j);
                }
                j += 1;
            };
            let Some(body_open) = body_open else {
                i = j.max(i + 1);
                continue;
            };
            let body_close = skip_balanced(toks, body_open, '{', '}').unwrap_or(toks.len());
            for slot in out.iter_mut().take(body_close).skip(body_open) {
                *slot = Some(name);
            }
            i = body_open + 1;
            continue;
        }
        if toks[i].ident() != Some("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = match skip_balanced(toks, j, '<', '>') {
                Some(k) => k,
                None => break,
            };
        }
        // Head reading, as in the R4 helper: the last path segment before
        // `{`/`where` is the type; a `for` resets it (trait impls record
        // the self type, which follows the `for`).
        let mut self_type: Option<&str> = None;
        let mut in_where = false;
        while let Some(t) = toks.get(j) {
            if t.is_punct('{') {
                break;
            }
            if let Some(id) = t.ident() {
                if id == "for" {
                    self_type = None; // the self type follows
                } else if id == "where" {
                    in_where = true;
                } else if !in_where {
                    self_type = Some(id);
                }
            } else if t.is_punct('<') {
                j = match skip_balanced(toks, j, '<', '>') {
                    Some(k) => k,
                    None => return out,
                };
                continue;
            }
            j += 1;
        }
        let Some(body_open) = toks.get(j).filter(|t| t.is_punct('{')).map(|_| j) else {
            i = j;
            continue;
        };
        let body_close = skip_balanced(toks, body_open, '{', '}').unwrap_or(toks.len());
        for slot in out.iter_mut().take(body_close).skip(body_open) {
            *slot = self_type;
        }
        // Keep scanning *inside* the impl too: nested impls are legal.
        i = body_open + 1;
    }
    out
}

/// Lists the calls inside one body token range.
pub fn calls_in(toks: &[Token], body: (usize, usize)) -> Vec<Call> {
    let mut out = Vec::new();
    for i in body.0..body.1.min(toks.len()) {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // A call is `name (` or the turbofish `name ::< … > (`.
        let after = i + 1;
        let open_paren = if toks.get(after).is_some_and(|t| t.is_punct('(')) {
            true
        } else if toks.get(after).is_some_and(|t| t.is_punct(':'))
            && toks.get(after + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(after + 2).is_some_and(|t| t.is_punct('<'))
        {
            skip_balanced(toks, after + 2, '<', '>')
                .is_some_and(|j| toks.get(j).is_some_and(|t| t.is_punct('(')))
        } else {
            false
        };
        if !open_paren {
            continue;
        }
        // Macros (`name!(…)`) are not function calls.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            continue;
        }
        let kind = if i >= 1 && toks[i - 1].is_punct('.') {
            CallKind::Method
        } else if i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].ident().is_some()
        {
            CallKind::Qualified(toks[i - 3].ident().unwrap_or_default().to_string())
        } else {
            CallKind::Bare
        };
        out.push(Call {
            name: name.to_string(),
            kind,
            line: toks[i].line,
        });
    }
    out
}

/// The workspace-wide symbol index: every function definition, the calls
/// each makes, and a name-resolved call graph.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    pub defs: Vec<FnDef>,
    /// `calls[d]` are the calls made by `defs[d]`.
    pub calls: Vec<Vec<Call>>,
    /// `edges[d]` are indices into `defs` the resolver connected.
    pub edges: Vec<Vec<usize>>,
    /// Function name → indices into `defs`, insertion-ordered.
    by_name: HashMap<String, Vec<usize>>,
}

impl WorkspaceIndex {
    /// Builds the index over every file of the workspace (pass 1) with no
    /// crate-dependency information: any crate may call into any other.
    /// The slice order defines [`FnDef::file`] indices and must match the
    /// `files` later handed to the index-aware rules.
    pub fn build(files: &[(FileContext, LexedFile)]) -> WorkspaceIndex {
        WorkspaceIndex::build_with_deps(files, &[])
    }

    /// [`build`](WorkspaceIndex::build), additionally pruning edges that
    /// contradict the crate dependency graph: a call site in crate A only
    /// resolves to a definition in crate B when A == B or `deps` records
    /// B among A's direct dependencies. This kills the name-collision
    /// class of false edge (a runtime crate "calling" a same-named method
    /// of a tool crate nothing links against). An empty `deps` slice means
    /// "no information" and keeps every edge.
    pub fn build_with_deps(
        files: &[(FileContext, LexedFile)],
        deps: &[(String, Vec<String>)],
    ) -> WorkspaceIndex {
        let mut index = WorkspaceIndex::default();
        let mut crate_of: Vec<String> = Vec::new();
        for (file_idx, (ctx, lexed)) in files.iter().enumerate() {
            for def in functions(ctx, lexed, file_idx) {
                index.calls.push(calls_in(&lexed.tokens, def.body));
                index
                    .by_name
                    .entry(def.name.clone())
                    .or_default()
                    .push(index.defs.len());
                crate_of.push(ctx.crate_name.clone());
                index.defs.push(def);
            }
        }
        let edge_ok = |caller: usize, target: usize| -> bool {
            if deps.is_empty() || crate_of[caller] == crate_of[target] {
                return true;
            }
            deps.iter()
                .find(|(name, _)| *name == crate_of[caller])
                .is_some_and(|(_, ds)| ds.contains(&crate_of[target]))
        };
        index.edges = (0..index.defs.len())
            .map(|d| index.resolve_all(d, &edge_ok))
            .collect();
        index
    }

    /// Resolves one definition's calls to candidate definitions. Test
    /// functions never carry edges (their callees are not hot-path
    /// reachable through them).
    fn resolve_all(&self, d: usize, edge_ok: &dyn Fn(usize, usize) -> bool) -> Vec<usize> {
        if self.defs[d].is_test {
            return Vec::new();
        }
        let mut out: Vec<usize> = Vec::new();
        for call in &self.calls[d] {
            let Some(candidates) = self.by_name.get(&call.name) else {
                continue;
            };
            for &c in candidates {
                let target = &self.defs[c];
                if target.is_test || !edge_ok(d, c) {
                    continue;
                }
                let matches = match &call.kind {
                    CallKind::Bare => target.impl_type.is_none(),
                    CallKind::Method => target.impl_type.is_some(),
                    CallKind::Qualified(q) => {
                        // `Type::method` by impl type; `module::func` falls
                        // through to free functions.
                        target.impl_type.as_deref() == Some(q.as_str())
                            || target.impl_type.is_none()
                    }
                };
                if matches && !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// All definitions named `name`, in index order.
    pub fn defs_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Breadth-first reachability from `roots` (indices into `defs`).
    /// Returns, for every reachable definition, the root it was first
    /// reached from — roots map to themselves.
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<(usize, usize)> {
        let mut from_root = vec![usize::MAX; self.defs.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if r < self.defs.len() && from_root[r] == usize::MAX {
                from_root[r] = r;
                queue.push_back(r);
            }
        }
        let mut out = Vec::new();
        while let Some(d) = queue.pop_front() {
            out.push((d, from_root[d]));
            for &next in &self.edges[d] {
                if from_root[next] == usize::MAX {
                    from_root[next] = from_root[d];
                    queue.push_back(next);
                }
            }
        }
        out
    }
}

/// From `toks[open]` (which must be `open_c`), returns the index just past
/// the matching `close_c`.
fn skip_balanced(toks: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth = depth.checked_sub(1)?;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(kind: FileKind) -> FileContext {
        FileContext {
            crate_name: "ch-test".to_string(),
            path: "crates/test/src/x.rs".to_string(),
            kind,
        }
    }

    #[test]
    fn functions_record_impl_type_and_body() {
        let src = "\
pub fn free() { helper(); }
struct S;
impl S { fn method(&self) -> u8 { 1 } }
trait T { fn declared(&self); fn defaulted(&self) { self.declared(); } }
impl T for S { fn declared(&self) { self.method(); } }
";
        let file = lex(src);
        let defs = functions(&ctx(FileKind::Library), &file, 0);
        let names: Vec<(&str, Option<&str>)> = defs
            .iter()
            .map(|d| (d.name.as_str(), d.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("S")),
                ("defaulted", Some("T")),
                ("declared", Some("S")), // trait impl records the self type
            ]
        );
        assert_eq!(defs[0].line, 1);
    }

    #[test]
    fn calls_classified_by_shape() {
        let src = "fn f() { helper(); Type::make(); x.method(); v.iter().collect::<Vec<_>>(); }";
        let file = lex(src);
        let defs = functions(&ctx(FileKind::Library), &file, 0);
        let calls = calls_in(&file.tokens, defs[0].body);
        let got: Vec<(&str, &CallKind)> =
            calls.iter().map(|c| (c.name.as_str(), &c.kind)).collect();
        assert_eq!(
            got,
            vec![
                ("helper", &CallKind::Bare),
                ("make", &CallKind::Qualified("Type".to_string())),
                ("method", &CallKind::Method),
                ("iter", &CallKind::Method),
                ("collect", &CallKind::Method),
            ]
        );
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "fn f(x: u8) { if (x > 0) { vec![1]; format!(\"{x}\"); } for i in (0..x) {} }";
        let file = lex(src);
        let defs = functions(&ctx(FileKind::Library), &file, 0);
        let calls = calls_in(&file.tokens, defs[0].body);
        assert!(calls.is_empty(), "{calls:?}");
    }

    #[test]
    fn reachability_walks_call_edges_but_not_test_code() {
        let src = "\
pub fn root() { step(); }
pub fn step() { leaf_a(); }
pub fn leaf_a() {}
pub fn unrelated() { leaf_b(); }
pub fn leaf_b() {}
#[cfg(test)]
mod tests {
    fn t() { super::leaf_b(); }
}
";
        let file = lex(src);
        let files = vec![(ctx(FileKind::Library), file)];
        let index = WorkspaceIndex::build(&files);
        let roots = index.defs_named("root").to_vec();
        let reached: Vec<&str> = index
            .reachable_from(&roots)
            .iter()
            .map(|&(d, _)| index.defs[d].name.as_str())
            .collect();
        assert_eq!(reached, vec!["root", "step", "leaf_a"]);
    }

    #[test]
    fn trait_method_roots_cover_every_impl() {
        let src_trait = "pub trait A { fn go(&mut self); }";
        let src_one = "impl A for One { fn go(&mut self) { alloc_here(); } }";
        let src_two = "impl A for Two { fn go(&mut self) {} }";
        let files: Vec<(FileContext, LexedFile)> = [src_trait, src_one, src_two]
            .iter()
            .map(|s| (ctx(FileKind::Library), lex(s)))
            .collect();
        let index = WorkspaceIndex::build(&files);
        assert_eq!(index.defs_named("go").len(), 2, "declaration has no body");
    }
}

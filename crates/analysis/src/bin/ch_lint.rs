//! `ch-lint`: the City-Hunter workspace lint gate.
//!
//! ```text
//! cargo run -p ch-analysis --bin ch-lint [-- OPTIONS]
//!
//! OPTIONS:
//!   --root <dir>     workspace root (default: discovered from the cwd)
//!   --allow <rule>   disable a rule for this run
//!   --deny <rule>    re-enable a rule overridden in ch-lint.toml
//!   --list-rules     print the rule ids and exit
//! ```
//!
//! Exit status: 0 when no denied findings, 1 when findings were reported,
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ch_analysis::config::{Config, Level};
use ch_analysis::rules::ALL_RULES;
use ch_analysis::workspace::{analyze_workspace, find_workspace_root};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("ch-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut overrides: Vec<(String, Level)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--allow" => {
                let rule = args.next().ok_or("--allow needs a rule id")?;
                overrides.push((rule, Level::Allow));
            }
            "--deny" => {
                let rule = args.next().ok_or("--deny needs a rule id")?;
                overrides.push((rule, Level::Deny));
            }
            "--list-rules" => {
                for rule in ALL_RULES {
                    println!("{rule}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!(
                    "ch-lint: City-Hunter workspace lint gate\n\
                     usage: ch-lint [--root DIR] [--allow RULE] [--deny RULE] [--list-rules]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory")?
        }
    };

    let mut config = Config::default();
    let config_path = root.join("ch-lint.toml");
    if let Ok(text) = std::fs::read_to_string(&config_path) {
        config.apply_toml(&text)?;
    }
    for (rule, level) in overrides {
        config.set(&rule, level)?;
    }

    let report = analyze_workspace(&root, &config)?;
    for finding in &report.findings {
        eprintln!("{finding}");
    }
    eprintln!(
        "ch-lint: {} finding(s) across {} file(s) in {} crate(s)",
        report.findings.len(),
        report.files_scanned,
        report.crates_scanned
    );
    Ok(if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

//! `ch-lint`: the City-Hunter workspace lint gate.
//!
//! ```text
//! cargo run -p ch-analysis --bin ch-lint [-- OPTIONS]
//!
//! OPTIONS:
//!   --root <dir>     workspace root (default: discovered from the cwd)
//!   --allow <rule>   disable a rule for this run
//!   --deny <rule>    re-enable a rule overridden in ch-lint.toml
//!   --format <fmt>   `text` (default) or `json` (machine-readable, on
//!                    stdout, stable field order — the CI artifact)
//!   --explain <rule> print the rule's rationale and escape hatch, exit
//!   --list-rules     print the rule ids and exit
//! ```
//!
//! Exit status: 0 when no denied findings, 1 when findings were reported,
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ch_analysis::config::{Config, Level};
use ch_analysis::rules::{ALL_RULES, RULE_EXPLANATIONS};
use ch_analysis::workspace::{analyze_workspace, find_workspace_root, Report};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("ch-lint: {message}");
            ExitCode::from(2)
        }
    }
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn run() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut overrides: Vec<(String, Level)> = Vec::new();
    let mut format = Format::Text;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--allow" => {
                let rule = args.next().ok_or("--allow needs a rule id")?;
                overrides.push((rule, Level::Allow));
            }
            "--deny" => {
                let rule = args.next().ok_or("--deny needs a rule id")?;
                overrides.push((rule, Level::Deny));
            }
            "--format" => {
                format = match args
                    .next()
                    .ok_or("--format needs `text` or `json`")?
                    .as_str()
                {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text or json)")),
                };
            }
            "--explain" => {
                let rule = args.next().ok_or("--explain needs a rule id")?;
                let Some((_, text)) = RULE_EXPLANATIONS.iter().find(|(r, _)| *r == rule) else {
                    return Err(format!(
                        "unknown rule `{rule}` (expected one of: {})",
                        ALL_RULES.join(", ")
                    ));
                };
                println!("{rule}\n{}\n{text}", "-".repeat(rule.len()));
                return Ok(ExitCode::SUCCESS);
            }
            "--list-rules" => {
                for rule in ALL_RULES {
                    println!("{rule}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!(
                    "ch-lint: City-Hunter workspace lint gate\n\
                     usage: ch-lint [--root DIR] [--allow RULE] [--deny RULE] \
                     [--format text|json] [--explain RULE] [--list-rules]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory")?
        }
    };

    let mut config = Config::default();
    let config_path = root.join("ch-lint.toml");
    if let Ok(text) = std::fs::read_to_string(&config_path) {
        config.apply_toml(&text)?;
    }
    for (rule, level) in overrides {
        config.set(&rule, level)?;
    }

    let report = analyze_workspace(&root, &config)?;
    match format {
        Format::Text => {
            for finding in &report.findings {
                eprintln!("{finding}");
            }
            eprintln!(
                "ch-lint: {} finding(s) across {} file(s) in {} crate(s)",
                report.findings.len(),
                report.files_scanned,
                report.crates_scanned
            );
        }
        Format::Json => println!("{}", render_json(&report)),
    }
    Ok(if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Renders the report as a single JSON object with a stable field order:
/// `findings` (each `{rule, path, line, message}` in report order), then
/// `files_scanned`, then `crates_scanned`. Hand-rolled so the analyzer
/// stays dependency-free; CI diffs this artifact, so the order is part of
/// the contract.
fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.message)
        ));
    }
    out.push_str(&format!(
        "],\"files_scanned\":{},\"crates_scanned\":{}}}",
        report.files_scanned, report.crates_scanned
    ));
    out
}

/// Escapes a string per JSON (RFC 8259): quotes, backslashes and control
/// characters; everything else passes through as UTF-8.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

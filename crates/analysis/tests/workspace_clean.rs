//! The acceptance gate turned into a test: running ch-lint over the real
//! workspace must come back clean, and the walker must actually have
//! visited the crates it claims to police.

use std::path::Path;

use ch_analysis::config::Config;
use ch_analysis::workspace::{analyze_workspace, find_workspace_root};

#[test]
fn the_workspace_is_lint_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root");
    let report = analyze_workspace(&root, &Config::default()).expect("analysis runs");
    assert!(
        report.findings.is_empty(),
        "ch-lint findings in the workspace:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.crates_scanned >= 10,
        "only {} crates scanned — walker lost the workspace",
        report.crates_scanned
    );
    assert!(
        report.files_scanned >= 40,
        "only {} files scanned",
        report.files_scanned
    );
}

//! The acceptance gate turned into a test: running ch-lint over the real
//! workspace with the repo's `ch-lint.toml` must come back clean, and the
//! walker must actually have visited the crates it claims to police. A
//! second test pins the `[scoped-allow]` list so an allowance cannot
//! silently widen beyond the one wall-clock module it was granted for.

use std::fs;
use std::path::Path;

use ch_analysis::config::Config;
use ch_analysis::workspace::{analyze_workspace, find_workspace_root};

fn repo_config(root: &Path) -> Config {
    let mut config = Config::default();
    let text = fs::read_to_string(root.join("ch-lint.toml")).expect("repo has ch-lint.toml");
    config.apply_toml(&text).expect("ch-lint.toml parses");
    config
}

#[test]
fn the_workspace_is_lint_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root");
    let report = analyze_workspace(&root, &repo_config(&root)).expect("analysis runs");
    assert!(
        report.findings.is_empty(),
        "ch-lint findings in the workspace:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.crates_scanned >= 10,
        "only {} crates scanned — walker lost the workspace",
        report.crates_scanned
    );
    assert!(
        report.files_scanned >= 40,
        "only {} files scanned",
        report.files_scanned
    );
}

/// The wall-clock allowance is exactly one file wide: under the *default*
/// config (no scoped allows) the only findings in the whole workspace are
/// `nondeterminism` hits inside the fleet telemetry module — proof that
/// the `[scoped-allow]` entry suppresses nothing else.
#[test]
fn the_wall_clock_allowance_stays_scoped_to_fleet_telemetry() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root");

    let strict = analyze_workspace(&root, &Config::default()).expect("analysis runs");
    assert!(
        !strict.findings.is_empty(),
        "expected the telemetry module to trip the strict gate — if the \
         fleet no longer reads the wall clock, drop the [scoped-allow] \
         entry from ch-lint.toml and this test"
    );
    for finding in &strict.findings {
        assert_eq!(
            (finding.rule, finding.path.as_str()),
            ("nondeterminism", "crates/fleet/src/telemetry.rs"),
            "unexpected strict-mode finding: {finding}"
        );
    }

    // And the repo config grants exactly that one allowance, nothing more.
    let config = repo_config(&root);
    assert_eq!(
        config.scoped_allows(),
        [(
            "nondeterminism",
            "crates/fleet/src/telemetry.rs".to_string()
        )],
        "ch-lint.toml's [scoped-allow] list widened — every new entry \
         needs its own pin here"
    );
    assert!(!config.is_path_allowed("nondeterminism", "crates/fleet/src/engine.rs"));
    assert!(!config.is_path_allowed("default-hasher", "crates/fleet/src/telemetry.rs"));
}

/// Every path `ch-lint.toml` names must exist on disk: a `[scoped-allow]`
/// entry for a renamed file silently allows nothing, and a `[hot-path]`
/// root whose scope moved silently guards nothing. Both failure modes
/// look like a clean lint run.
#[test]
fn configured_paths_exist_on_disk() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root");
    let config = repo_config(&root);

    for (rule, path) in config.scoped_allows() {
        assert!(
            root.join(path).is_file(),
            "[scoped-allow] entry `{rule} = \"{path}\"` names a file that \
             does not exist — stale after a rename?"
        );
    }

    assert!(
        !config.hot_path_roots().is_empty(),
        "ch-lint.toml lost its [hot-path] section — R6 guards nothing"
    );
    for hp in config.hot_path_roots() {
        let scope = root.join(&hp.scope);
        assert!(
            scope.is_file() || scope.is_dir(),
            "[hot-path] root `{}::{}` names a scope that does not exist — \
             stale after a rename?",
            hp.scope,
            hp.name
        );
    }
}

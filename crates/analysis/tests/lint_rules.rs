//! Fixture-driven tests for the ch-lint rules: each fixture contains
//! known violations; the tests pin rule ids *and* line numbers, plus the
//! `// ch-lint: allow(...)` suppression behaviour. The workspace-level
//! rule (R6 `hot-path-alloc`) is driven through [`analyze_files`] with a
//! config carrying `[hot-path]` roots.

use ch_analysis::config::Config;
use ch_analysis::{analyze_files, analyze_source, FileContext, FileKind, Finding};

fn run(crate_name: &str, path: &str, kind: FileKind, source: &str) -> Vec<(String, u32)> {
    let ctx = FileContext {
        crate_name: crate_name.to_string(),
        path: path.to_string(),
        kind,
    };
    analyze_source(&ctx, source)
        .into_iter()
        .map(|f: Finding| (f.rule.to_string(), f.line))
        .collect()
}

#[test]
fn r1_default_hasher_fixture() {
    let src = include_str!("fixtures/default_hasher.rs");
    let got = run(
        "ch-sim",
        "crates/sim/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("default-hasher".to_string(), 2),  // use … HashMap
            ("default-hasher".to_string(), 6),  // HashMap<u64, u32> (no hasher)
            ("default-hasher".to_string(), 7),  // HashSet<u64>
            ("default-hasher".to_string(), 11), // HashMap::new()
        ],
        "line 3 is allow-suppressed; lines 10/14 carry explicit hashers; the \
         #[cfg(test)] mod is exempt"
    );
}

#[test]
fn r1_does_not_apply_outside_determinism_crates() {
    let src = include_str!("fixtures/default_hasher.rs");
    let got = run(
        "ch-analysis",
        "crates/analysis/src/x.rs",
        FileKind::Library,
        src,
    );
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r2_nondeterminism_fixture() {
    let src = include_str!("fixtures/nondeterminism.rs");
    let got = run(
        "ch-geo",
        "crates/geo/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("nondeterminism".to_string(), 5),  // Instant::now()
            ("nondeterminism".to_string(), 9),  // SystemTime::now()
            ("nondeterminism".to_string(), 19), // thread_rng()
            ("nondeterminism".to_string(), 23), // rand::random()
        ],
        "line 14 is allow-suppressed; strings, comments and the test mod \
         must not fire"
    );
}

#[test]
fn r2_exempts_bench_crate_and_test_targets() {
    let src = include_str!("fixtures/nondeterminism.rs");
    let bench = run("ch-bench", "crates/bench/src/x.rs", FileKind::Library, src);
    assert!(bench.is_empty(), "{bench:?}");
    let test_target = run("ch-geo", "crates/geo/tests/x.rs", FileKind::TestTarget, src);
    assert!(test_target.is_empty(), "{test_target:?}");
}

#[test]
fn r3_panic_path_fixture() {
    let src = include_str!("fixtures/panic_path.rs");
    let got = run(
        "ch-wifi",
        "crates/wifi/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("panic-path".to_string(), 5),  // .unwrap()
            ("panic-path".to_string(), 9),  // .expect(…)
            ("panic-path".to_string(), 18), // panic!
            ("panic-path".to_string(), 37), // unreachable!
            ("panic-path".to_string(), 42), // todo!
            ("panic-path".to_string(), 46), // unimplemented!
        ],
        "lines 14 and 53 are allow-suppressed; bare `unwrap`/`expect` \
         identifiers and test code must not fire"
    );
}

#[test]
fn r3_covers_fleet_library_code() {
    // The engine absorbs other code's panics; its own library code is
    // held to the same panic-free bar as the data-plane crates.
    let src = include_str!("fixtures/panic_path.rs");
    let got = run(
        "ch-fleet",
        "crates/fleet/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("panic-path".to_string(), 5),
            ("panic-path".to_string(), 9),
            ("panic-path".to_string(), 18),
            ("panic-path".to_string(), 37),
            ("panic-path".to_string(), 42),
            ("panic-path".to_string(), 46),
        ],
        "ch-fleet library code is in R3 scope"
    );
    let test_target = run(
        "ch-fleet",
        "crates/fleet/tests/x.rs",
        FileKind::TestTarget,
        src,
    );
    assert!(test_target.is_empty(), "{test_target:?}");
}

#[test]
fn detect_library_code_is_in_r3_r5_and_r7_scope() {
    // The detector rides the same frame stream as the clients, so it is
    // held to the data-plane bars: panic-free (R3), interned-SSID hot
    // path (R5) and seed discipline (R7, via the determinism set).
    let panic_src = include_str!("fixtures/panic_path.rs");
    let got = run(
        "ch-detect",
        "crates/detect/src/fixture.rs",
        FileKind::Library,
        panic_src,
    );
    assert_eq!(
        got.iter().filter(|(rule, _)| rule == "panic-path").count(),
        6,
        "ch-detect library code is in R3 scope: {got:?}"
    );
    let ssid_src = include_str!("fixtures/ssid_clone.rs");
    let got = run(
        "ch-detect",
        "crates/detect/src/fixture.rs",
        FileKind::Library,
        ssid_src,
    );
    assert_eq!(
        got,
        vec![
            ("ssid-clone".to_string(), 5),
            ("ssid-clone".to_string(), 14)
        ],
        "ch-detect library code is in R5 scope"
    );
    let seed_src = include_str!("fixtures/seed_discipline.rs");
    let got = run(
        "ch-detect",
        "crates/detect/src/fixture.rs",
        FileKind::Library,
        seed_src,
    );
    assert_eq!(
        got,
        vec![
            ("seed-discipline".to_string(), 8),
            ("seed-discipline".to_string(), 25),
        ],
        "ch-detect library code is in R7 scope"
    );
}

#[test]
fn r3_does_not_apply_to_non_panic_free_crates() {
    let src = include_str!("fixtures/panic_path.rs");
    let got = run("ch-sim", "crates/sim/src/x.rs", FileKind::Library, src);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r4_missing_decode_fixture() {
    let src = include_str!("fixtures/missing_decode.rs");
    let got = run("ch-wifi", "crates/wifi/src/ie.rs", FileKind::Library, src);
    assert_eq!(
        got,
        vec![("missing-decode".to_string(), 9)], // BeaconStub::encode_into
        "ProbeStub pairs encode/parse, SplitStub decodes in a second impl, \
         ScratchStub is private, Display is a trait impl"
    );
}

#[test]
fn r4_scoped_to_wire_format_modules() {
    let src = include_str!("fixtures/missing_decode.rs");
    // Same crate, different module: out of scope.
    let got = run(
        "ch-wifi",
        "crates/wifi/src/codec.rs",
        FileKind::Library,
        src,
    );
    assert!(got.is_empty(), "{got:?}");
    // Same path shape, different crate: out of scope.
    let got = run("ch-sim", "crates/sim/src/ie.rs", FileKind::Library, src);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r5_ssid_clone_fixture() {
    let src = include_str!("fixtures/ssid_clone.rs");
    let got = run(
        "ch-attack",
        "crates/attack/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("ssid-clone".to_string(), 5),  // probe_ssid.clone()
            ("ssid-clone".to_string(), 14), // probe.ssid.clone()
        ],
        "line 18 is allow-suppressed; resolve(..).clone() and non-SSID \
         clones must not fire; the #[cfg(test)] mod is exempt"
    );
}

#[test]
fn r5_scoped_to_hot_path_crates_and_library_code() {
    let src = include_str!("fixtures/ssid_clone.rs");
    // Same shape, non-hot-path crate: out of scope.
    let got = run(
        "ch-scenarios",
        "crates/scenarios/src/x.rs",
        FileKind::Library,
        src,
    );
    assert!(got.is_empty(), "{got:?}");
    // Test targets of an in-scope crate: out of scope.
    let got = run(
        "ch-attack",
        "crates/attack/tests/x.rs",
        FileKind::TestTarget,
        src,
    );
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn allow_comment_suppresses_only_its_rule() {
    let src =
        "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap() // ch-lint: allow(nondeterminism)\n}\n";
    let got = run("ch-arc", "crates/arc/src/x.rs", FileKind::Library, src);
    assert_eq!(got, vec![("panic-path".to_string(), 2)]);
}

// --- R6: hot-path-alloc (workspace-level, via analyze_files) --------------

fn hot_path_files() -> Vec<(FileContext, String)> {
    let ctx = |path: &str| FileContext {
        crate_name: "ch-attack".to_string(),
        path: path.to_string(),
        kind: FileKind::Library,
    };
    vec![
        (
            ctx("crates/attack/src/hot_entry.rs"),
            include_str!("fixtures/hot_path_entry.rs").to_string(),
        ),
        (
            ctx("crates/attack/src/hot_cold.rs"),
            include_str!("fixtures/hot_path_cold.rs").to_string(),
        ),
    ]
}

fn hot_path_config(root: &str) -> Config {
    let mut config = Config::default();
    config.add_hot_path_root(root).expect("valid root");
    config
}

/// The acceptance-criteria scenario: the allocation sits on a branch the
/// perfbench workload never executes (`cold == true`), two call-graph hops
/// and one file away from the root. The runtime alloc-counter gate is
/// blind to it; the reachability walk is not.
#[test]
fn r6_catches_allocation_on_unexecuted_cold_branch() {
    let files = hot_path_files();
    let config = hot_path_config("crates/attack/src/hot_entry.rs::respond");
    let got: Vec<(String, String, u32)> = analyze_files(&files, &config)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.path, f.line))
        .collect();
    assert_eq!(
        got,
        vec![(
            "hot-path-alloc".to_string(),
            "crates/attack/src/hot_cold.rs".to_string(),
            4, // format! in cold_diagnostics
        )],
        "line 7's .to_vec() is allow-suppressed; not_reachable's \
         String::from and the #[cfg(test)] vec! must not fire"
    );
    let finding = &analyze_files(&files, &config)[0];
    assert!(
        finding.message.contains("hot-path root"),
        "message names the root: {}",
        finding.message
    );
}

#[test]
fn r6_directory_scope_and_unmatched_roots() {
    let files = hot_path_files();
    // A directory scope covers every file under it.
    let config = hot_path_config("crates/attack/src::respond");
    let got = analyze_files(&files, &config);
    assert_eq!(got.len(), 1, "{got:?}");
    // A root that matches nothing on either axis finds nothing.
    for dud in [
        "crates/attack/src/hot_entry.rs::no_such_fn",
        "crates/wifi/src::respond",
    ] {
        let got = analyze_files(&files, &hot_path_config(dud));
        assert!(got.is_empty(), "{dud}: {got:?}");
    }
    // No roots configured: R6 is inert.
    assert!(analyze_files(&files, &Config::default()).is_empty());
}

// --- R7: seed-discipline ---------------------------------------------------

#[test]
fn r7_seed_discipline_fixture() {
    let src = include_str!("fixtures/seed_discipline.rs");
    let got = run(
        "ch-sim",
        "crates/sim/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("seed-discipline".to_string(), 8),  // SimRng::seed_from(42)
            ("seed-discipline".to_string(), 25), // cfg.seed reused in `reused`
        ],
        "config fields, derive_seed and fork are legitimate; line 36 is \
         allow-suppressed; the #[cfg(test)] mod is exempt"
    );
}

#[test]
fn r7_exempts_non_determinism_crates_and_test_targets() {
    let src = include_str!("fixtures/seed_discipline.rs");
    let bench = run("ch-bench", "crates/bench/src/x.rs", FileKind::Library, src);
    assert!(bench.is_empty(), "{bench:?}");
    let test_target = run("ch-sim", "crates/sim/tests/x.rs", FileKind::TestTarget, src);
    assert!(test_target.is_empty(), "{test_target:?}");
}

// --- Lexer edge cases: constructs that must never produce findings --------

#[test]
fn raw_strings_mentioning_banned_tokens_do_not_fire() {
    let src = "pub fn doc() -> &'static str {\n    \
               r#\"call .unwrap() or panic!(\"x\") or Instant::now()\"#\n}\n";
    let got = run("ch-arc", "crates/arc/src/x.rs", FileKind::Library, src);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn byte_strings_mentioning_banned_tokens_do_not_fire() {
    let src = "pub fn blob() -> &'static [u8] {\n    \
               b\"thread_rng() .expect(panic!)\"\n}\n\
               pub fn raw_blob() -> &'static [u8] {\n    \
               br#\"SystemTime::now() \"quoted\" todo!()\"#\n}\n";
    let got = run("ch-arc", "crates/arc/src/x.rs", FileKind::Library, src);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn nested_modules_inside_cfg_test_stay_exempt() {
    let src = "#[cfg(test)]\nmod outer {\n    mod inner {\n        \
               pub fn f(v: Option<u8>) -> u8 {\n            \
               v.unwrap()\n        }\n        \
               pub fn t() -> u32 {\n            \
               rand::thread_rng().gen()\n        }\n    }\n}\n";
    let got = run("ch-arc", "crates/arc/src/x.rs", FileKind::Library, src);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn doc_comments_mentioning_unwrap_do_not_fire() {
    let src = "/// Call `.unwrap()` here and panic!(\"boom\") there.\n\
               /** Or `.expect(\"x\")`, or unreachable!(). */\n\
               //! Even thread_rng() and SimRng::seed_from(42).\n\
               pub fn documented() {}\n";
    let got = run("ch-arc", "crates/arc/src/x.rs", FileKind::Library, src);
    assert!(got.is_empty(), "{got:?}");
}

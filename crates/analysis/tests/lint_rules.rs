//! Fixture-driven tests for the four ch-lint rules: each fixture contains
//! known violations; the tests pin rule ids *and* line numbers, plus the
//! `// ch-lint: allow(...)` suppression behaviour.

use ch_analysis::{analyze_source, FileContext, FileKind, Finding};

fn run(crate_name: &str, path: &str, kind: FileKind, source: &str) -> Vec<(String, u32)> {
    let ctx = FileContext {
        crate_name: crate_name.to_string(),
        path: path.to_string(),
        kind,
    };
    analyze_source(&ctx, source)
        .into_iter()
        .map(|f: Finding| (f.rule.to_string(), f.line))
        .collect()
}

#[test]
fn r1_default_hasher_fixture() {
    let src = include_str!("fixtures/default_hasher.rs");
    let got = run(
        "ch-sim",
        "crates/sim/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("default-hasher".to_string(), 2),  // use … HashMap
            ("default-hasher".to_string(), 6),  // HashMap<u64, u32> (no hasher)
            ("default-hasher".to_string(), 7),  // HashSet<u64>
            ("default-hasher".to_string(), 11), // HashMap::new()
        ],
        "line 3 is allow-suppressed; lines 10/14 carry explicit hashers; the \
         #[cfg(test)] mod is exempt"
    );
}

#[test]
fn r1_does_not_apply_outside_determinism_crates() {
    let src = include_str!("fixtures/default_hasher.rs");
    let got = run(
        "ch-analysis",
        "crates/analysis/src/x.rs",
        FileKind::Library,
        src,
    );
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r2_nondeterminism_fixture() {
    let src = include_str!("fixtures/nondeterminism.rs");
    let got = run(
        "ch-geo",
        "crates/geo/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("nondeterminism".to_string(), 5),  // Instant::now()
            ("nondeterminism".to_string(), 9),  // SystemTime::now()
            ("nondeterminism".to_string(), 19), // thread_rng()
        ],
        "line 14 is allow-suppressed; strings, comments and the test mod \
         must not fire"
    );
}

#[test]
fn r2_exempts_bench_crate_and_test_targets() {
    let src = include_str!("fixtures/nondeterminism.rs");
    let bench = run("ch-bench", "crates/bench/src/x.rs", FileKind::Library, src);
    assert!(bench.is_empty(), "{bench:?}");
    let test_target = run("ch-geo", "crates/geo/tests/x.rs", FileKind::TestTarget, src);
    assert!(test_target.is_empty(), "{test_target:?}");
}

#[test]
fn r3_panic_path_fixture() {
    let src = include_str!("fixtures/panic_path.rs");
    let got = run(
        "ch-wifi",
        "crates/wifi/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("panic-path".to_string(), 5),  // .unwrap()
            ("panic-path".to_string(), 9),  // .expect(…)
            ("panic-path".to_string(), 18), // panic!
        ],
        "line 14 is allow-suppressed; bare `unwrap`/`expect` identifiers and \
         test code must not fire"
    );
}

#[test]
fn r3_covers_fleet_library_code() {
    // The engine absorbs other code's panics; its own library code is
    // held to the same panic-free bar as the data-plane crates.
    let src = include_str!("fixtures/panic_path.rs");
    let got = run(
        "ch-fleet",
        "crates/fleet/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("panic-path".to_string(), 5),
            ("panic-path".to_string(), 9),
            ("panic-path".to_string(), 18),
        ],
        "ch-fleet library code is in R3 scope"
    );
    let test_target = run(
        "ch-fleet",
        "crates/fleet/tests/x.rs",
        FileKind::TestTarget,
        src,
    );
    assert!(test_target.is_empty(), "{test_target:?}");
}

#[test]
fn r3_does_not_apply_to_non_panic_free_crates() {
    let src = include_str!("fixtures/panic_path.rs");
    let got = run("ch-sim", "crates/sim/src/x.rs", FileKind::Library, src);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r4_missing_decode_fixture() {
    let src = include_str!("fixtures/missing_decode.rs");
    let got = run("ch-wifi", "crates/wifi/src/ie.rs", FileKind::Library, src);
    assert_eq!(
        got,
        vec![("missing-decode".to_string(), 9)], // BeaconStub::encode_into
        "ProbeStub pairs encode/parse, SplitStub decodes in a second impl, \
         ScratchStub is private, Display is a trait impl"
    );
}

#[test]
fn r4_scoped_to_wire_format_modules() {
    let src = include_str!("fixtures/missing_decode.rs");
    // Same crate, different module: out of scope.
    let got = run(
        "ch-wifi",
        "crates/wifi/src/codec.rs",
        FileKind::Library,
        src,
    );
    assert!(got.is_empty(), "{got:?}");
    // Same path shape, different crate: out of scope.
    let got = run("ch-sim", "crates/sim/src/ie.rs", FileKind::Library, src);
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn r5_ssid_clone_fixture() {
    let src = include_str!("fixtures/ssid_clone.rs");
    let got = run(
        "ch-attack",
        "crates/attack/src/fixture.rs",
        FileKind::Library,
        src,
    );
    assert_eq!(
        got,
        vec![
            ("ssid-clone".to_string(), 5),  // probe_ssid.clone()
            ("ssid-clone".to_string(), 14), // probe.ssid.clone()
        ],
        "line 18 is allow-suppressed; resolve(..).clone() and non-SSID \
         clones must not fire; the #[cfg(test)] mod is exempt"
    );
}

#[test]
fn r5_scoped_to_hot_path_crates_and_library_code() {
    let src = include_str!("fixtures/ssid_clone.rs");
    // Same shape, non-hot-path crate: out of scope.
    let got = run(
        "ch-scenarios",
        "crates/scenarios/src/x.rs",
        FileKind::Library,
        src,
    );
    assert!(got.is_empty(), "{got:?}");
    // Test targets of an in-scope crate: out of scope.
    let got = run(
        "ch-attack",
        "crates/attack/tests/x.rs",
        FileKind::TestTarget,
        src,
    );
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn allow_comment_suppresses_only_its_rule() {
    let src =
        "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap() // ch-lint: allow(nondeterminism)\n}\n";
    let got = run("ch-arc", "crates/arc/src/x.rs", FileKind::Library, src);
    assert_eq!(got, vec![("panic-path".to_string(), 2)]);
}

//! R6 fixture — the cold-branch helper, one file away from the root.

pub fn cold_diagnostics(out: &mut Vec<u8>) {
    let label = format!("len={}", out.len());
    out.extend(label.bytes());
    // ch-lint: allow(hot-path-alloc) — fixture-sanctioned scratch copy
    let scratch = out.to_vec();
    drop(scratch);
}

#[cfg(test)]
mod tests {
    #[test]
    fn allocation_is_fine_in_tests() {
        let mut out = vec![0u8];
        super::cold_diagnostics(&mut out);
    }
}

//! R5 fixture — string-SSID clones in a hot-path crate's library code.

pub fn harvest(probe_ssid: &str, log: &mut Vec<String>) {
    log.push(probe_ssid.to_string());
    let copy = probe_ssid.clone();
    let _ = copy;
}

pub struct Probe {
    pub ssid: String,
}

pub fn mimic(probe: &Probe) -> String {
    probe.ssid.clone()
}

pub fn justified(probe: &Probe) -> String {
    probe.ssid.clone() // ch-lint: allow(ssid-clone) — refcount bump off the hot path
}

pub fn resolved_at_the_edge(names: &[String], idx: usize) -> String {
    // The sanctioned pattern: materialize from an id via resolve(); the
    // receiver of `.clone()` is a call result, not an SSID-named value.
    names.get(idx).unwrap_or(&String::new()).clone()
}

pub fn other_clones_are_fine(weights: &Vec<f64>) -> Vec<f64> {
    weights.clone()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_clone_ssids() {
        let ssid = String::from("CSL");
        let _ = ssid.clone();
    }
}

//! R3 fixture — panic paths in a panic-free crate's library code.

/// Docs may say panic! freely; `.unwrap()` in prose is also fine.
pub fn first(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap()
}

pub fn header(bytes: &[u8]) -> u16 {
    let word: [u8; 2] = bytes[..2].try_into().expect("sliced to 2");
    u16::from_le_bytes(word)
}

pub fn checked(bytes: &[u8]) -> u8 {
    *bytes.first().unwrap() // ch-lint: allow(panic-path) — caller guarantees non-empty
}

pub fn boom() {
    panic!("unreachable by construction");
}

pub fn fine(bytes: &[u8]) -> Option<u8> {
    let value = bytes.first().copied()?;
    value.checked_add(1) // unwrap_or / expect_err style names must not match
}

pub fn named_not_called() -> &'static str {
    // idents alone (no call) must not match:
    let unwrap = "unwrap";
    let expect = "expect";
    let _ = (unwrap, expect);
    "ok"
}

pub fn branch_not_taken(x: u8) -> u8 {
    match x {
        0 => 0,
        _ => unreachable!("callers pass 0"),
    }
}

pub fn not_yet() {
    todo!()
}

pub fn never() {
    unimplemented!()
}

pub fn blessed_sentinel(x: u8) -> u8 {
    match x {
        0 => 0,
        // ch-lint: allow(panic-path) — upstream enum is non-exhaustive
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        Some(1u8).unwrap();
        assert!(std::panic::catch_unwind(|| panic!("test-only")).is_err());
        assert!(std::panic::catch_unwind(|| unreachable!()).is_err());
    }
}

//! R1 fixture — scanned as library code of a determinism-critical crate.
use std::collections::HashMap;
use std::collections::HashSet; // ch-lint: allow(default-hasher)

pub struct State {
    pub index: HashMap<u64, u32>,
    pub seen: HashSet<u64>,
}

pub fn build() -> HashMap<u64, u32, std::hash::RandomState> {
    HashMap::new()
}

pub fn seeded(set: HashSet<u64, std::hash::RandomState>) -> usize {
    set.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn exempt_in_tests() {
        let _ = HashMap::<u8, u8>::new();
    }
}

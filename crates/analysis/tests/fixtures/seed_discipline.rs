//! R7 fixture — seed provenance in a determinism crate.

pub struct Cfg {
    pub seed: u64,
}

pub fn hard_coded() -> SimRng {
    SimRng::seed_from(42)
}

pub fn from_config(cfg: &Cfg) -> SimRng {
    SimRng::seed_from(cfg.seed)
}

pub fn derived(base: u64) -> SimRng {
    SimRng::seed_from(derive_seed(base, 7))
}

pub fn forked(parent: &mut SimRng) -> SimRng {
    parent.fork("worker")
}

pub fn reused(cfg: &Cfg) -> (SimRng, SimRng) {
    let a = SimRng::seed_from(cfg.seed);
    let b = SimRng::seed_from(cfg.seed);
    (a, b)
}

pub fn distinct(cfg: &Cfg) -> (SimRng, FaultRng) {
    let a = SimRng::seed_from(cfg.seed);
    let b = FaultRng::seed_from(derive_seed(cfg.seed, 1));
    (a, b)
}

pub fn blessed() -> SimRng {
    SimRng::seed_from(99) // ch-lint: allow(seed-discipline) — golden-file pin
}

#[cfg(test)]
mod tests {
    #[test]
    fn literals_are_fine_in_tests() {
        let a = SimRng::seed_from(7);
        let b = SimRng::seed_from(7);
        let _ = (a, b);
    }
}

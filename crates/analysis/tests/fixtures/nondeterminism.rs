//! R2 fixture — wall clocks and ambient randomness in library code.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch_ms() -> u128 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).unwrap().as_millis()
}

pub fn roll() -> u32 {
    let mut rng = rand::thread_rng(); // ch-lint: allow(nondeterminism)
    rng.gen()
}

pub fn roll_unblessed() -> u32 {
    rand::thread_rng().gen()
}

pub fn coin() -> bool {
    rand::random()
}

// "Instant::now() in a string or comment is fine"
pub const DOC: &str = "call Instant::now() never";

#[cfg(test)]
mod tests {
    #[test]
    fn timing_allowed_here() {
        let _ = std::time::Instant::now();
    }
}

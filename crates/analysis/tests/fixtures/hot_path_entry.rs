//! R6 fixture — the configured hot-path root. The allocations live in a
//! *different file*, behind a branch the perfbench workload never takes
//! (`cold == false` in every benchmark run), so the runtime alloc-counter
//! gate cannot see them; only the call-graph walk can.

pub fn respond(out: &mut Vec<u8>, cold: bool) {
    out.clear();
    encode(out, cold);
}

fn encode(out: &mut Vec<u8>, cold: bool) {
    out.push(1);
    if cold {
        cold_diagnostics(out);
    }
}

pub fn not_reachable() -> String {
    String::from("allocation outside the root's reach")
}

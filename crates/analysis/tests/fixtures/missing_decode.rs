//! R4 fixture — encode without decode in a wire-format module.

/// Violation: public, encodes, never decodes.
pub struct BeaconStub {
    pub field: u8,
}

impl BeaconStub {
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.field);
    }

    pub fn len(&self) -> usize {
        1
    }
}

/// Fine: encode is paired with a parse counterpart.
pub struct ProbeStub {
    pub field: u8,
}

impl ProbeStub {
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.field);
    }

    pub fn parse(bytes: &[u8]) -> Option<ProbeStub> {
        bytes.first().map(|&field| ProbeStub { field })
    }
}

/// Fine: private types are not part of the wire contract.
struct ScratchStub;

impl ScratchStub {
    fn encode_into(&self, _out: &mut Vec<u8>) {}
}

/// Fine: decode split across a second impl block of the same type.
pub struct SplitStub;

impl SplitStub {
    pub fn encode_into(&self, _out: &mut Vec<u8>) {}
}

impl SplitStub {
    pub fn decode(_bytes: &[u8]) -> Option<SplitStub> {
        Some(SplitStub)
    }
}

impl std::fmt::Display for BeaconStub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.field)
    }
}

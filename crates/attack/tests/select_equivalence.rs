//! The scratch-buffer selection path must be *bit-identical* to the
//! allocating algorithm it replaced.
//!
//! `reference_select` below is a line-for-line port of the pre-interning
//! `AdaptiveBuffers::select` (clone-per-pick, `Vec`-per-call, linear-scan
//! dedup, stable `sort_by_key` lane ordering), re-keyed from `Ssid` to
//! `SsidId` — a bijection under one interner, so equality and order are
//! preserved. Both paths draw from identically seeded [`SimRng`]s; the
//! scratch path kept the draw sequence, so outputs must match exactly.

use ch_attack::buffers::{AdaptiveBuffers, SelectScratch, GHOST_LEN, GHOST_PICKS, MIN_BUFFER};
use ch_attack::LureLane;
use ch_sim::SimRng;
use ch_wifi::{Ssid, SsidId, SsidInterner};
use proptest::prelude::*;

/// The seed-revision selection algorithm, verbatim except for the id
/// re-keying. Do not "improve" this: it is the oracle.
fn reference_select(
    buffers: &AdaptiveBuffers,
    by_weight: &[SsidId],
    by_freshness: &[SsidId],
    budget: usize,
    rng: &mut SimRng,
) -> Vec<(SsidId, LureLane)> {
    let (p, _f) = buffers.sizes();
    let total = buffers.total();
    let budget = budget.min(total);
    let p_quota = (p * budget).div_ceil(total).min(budget);
    let f_quota = budget - p_quota;

    let mut picked: Vec<(SsidId, LureLane)> = Vec::with_capacity(budget);
    let contains =
        |picked: &Vec<(SsidId, LureLane)>, s: SsidId| picked.iter().any(|&(q, _)| q == s);

    let pb_core = p_quota.saturating_sub(GHOST_PICKS.min(p_quota));
    for &ssid in by_weight.iter().take(pb_core) {
        if !contains(&picked, ssid) {
            picked.push((ssid, LureLane::Popularity));
        }
    }
    if p_quota > 0 {
        let ghost_pool: Vec<SsidId> = by_weight
            .iter()
            .skip(pb_core)
            .take(GHOST_LEN)
            .copied()
            .collect();
        for i in rng.sample_indices(ghost_pool.len(), GHOST_PICKS.min(p_quota)) {
            let ssid = ghost_pool[i];
            if !contains(&picked, ssid) {
                picked.push((ssid, LureLane::PopularityGhost));
            }
        }
    }

    let fb_core = f_quota.saturating_sub(GHOST_PICKS.min(f_quota));
    let mut fb_taken = 0usize;
    let mut fresh_iter = by_freshness.iter();
    for &ssid in fresh_iter.by_ref() {
        if fb_taken >= fb_core {
            break;
        }
        if !contains(&picked, ssid) {
            picked.push((ssid, LureLane::Freshness));
            fb_taken += 1;
        }
    }
    if f_quota > 0 {
        let ghost_pool: Vec<SsidId> = fresh_iter
            .filter(|&&s| !contains(&picked, s))
            .take(GHOST_LEN)
            .copied()
            .collect();
        for i in rng.sample_indices(ghost_pool.len(), GHOST_PICKS.min(f_quota)) {
            let ssid = ghost_pool[i];
            if !contains(&picked, ssid) && picked.len() < budget {
                picked.push((ssid, LureLane::FreshnessGhost));
            }
        }
    }

    for &ssid in by_weight {
        if picked.len() >= budget {
            break;
        }
        if !contains(&picked, ssid) {
            picked.push((ssid, LureLane::Popularity));
        }
    }
    picked.sort_by_key(|(_, lane)| match lane {
        LureLane::Popularity => 0,
        LureLane::Freshness => 1,
        LureLane::PopularityGhost => 2,
        LureLane::FreshnessGhost => 3,
        _ => 4,
    });
    picked.truncate(budget);
    picked
}

/// Interns `w{i}` / `f{i}` name lists into id slices, with `overlap` of the
/// freshness list aliased onto weight entries (both-popular-and-fresh SSIDs
/// are the interesting dedup case).
fn corpus(n_weight: usize, n_fresh: usize, overlap: usize) -> (Vec<SsidId>, Vec<SsidId>) {
    let mut interner = SsidInterner::new();
    let by_weight: Vec<SsidId> = (0..n_weight)
        .map(|i| interner.intern(&Ssid::new_lossy(format!("w{i:04}"))))
        .collect();
    let by_fresh: Vec<SsidId> = (0..n_fresh)
        .map(|i| {
            if i < overlap && i < n_weight {
                by_weight[i]
            } else {
                interner.intern(&Ssid::new_lossy(format!("f{i:04}")))
            }
        })
        .collect();
    (by_weight, by_fresh)
}

fn assert_paths_match(
    buffers: &AdaptiveBuffers,
    by_weight: &[SsidId],
    by_fresh: &[SsidId],
    budget: usize,
    seed: u64,
) {
    let mut rng_ref = SimRng::seed_from(seed);
    let expected = reference_select(buffers, by_weight, by_fresh, budget, &mut rng_ref);

    let mut rng_new = SimRng::seed_from(seed);
    let mut scratch = SelectScratch::new();
    let mut out = Vec::new();
    buffers.select_into(
        by_weight,
        by_fresh,
        budget,
        &mut rng_new,
        &mut scratch,
        &mut out,
    );
    assert_eq!(
        out, expected,
        "scratch path diverged from the seed algorithm"
    );

    // RNG state must also agree afterwards: the runner interleaves
    // selections on one stream, so a skipped or extra draw would desync
    // every later client even if this output matched.
    assert_eq!(rng_new.next_u64(), rng_ref.next_u64());
}

#[test]
fn deep_corpus_matches_reference() {
    let buffers = AdaptiveBuffers::paper_default();
    let (w, f) = corpus(300, 60, 10);
    for seed in 0..32 {
        assert_paths_match(&buffers, &w, &f, 40, seed);
    }
}

#[test]
fn shallow_and_empty_corpora_match_reference() {
    let buffers = AdaptiveBuffers::paper_default();
    for (nw, nf, ov) in [(0, 0, 0), (3, 0, 0), (0, 5, 0), (10, 10, 10), (45, 25, 5)] {
        let (w, f) = corpus(nw, nf, ov);
        for budget in [0, 1, 7, 40, 64] {
            assert_paths_match(&buffers, &w, &f, budget, 99);
        }
    }
}

#[test]
fn adapted_splits_match_reference() {
    // Walk the split to both extremes and check at every step.
    let (w, f) = corpus(120, 80, 20);
    let mut buffers = AdaptiveBuffers::paper_default();
    for _ in 0..40 {
        buffers.adapt(LureLane::FreshnessGhost);
        assert_paths_match(&buffers, &w, &f, 40, 7);
    }
    for _ in 0..80 {
        buffers.adapt(LureLane::PopularityGhost);
        assert_paths_match(&buffers, &w, &f, 40, 7);
    }
    assert!(buffers.sizes().1 >= MIN_BUFFER);
}

proptest! {
    /// Randomized corpora, overlaps, budgets, splits and seeds: the scratch
    /// path reproduces the seed algorithm everywhere, including with a
    /// dirty (reused) scratch carried across cases.
    #[test]
    fn prop_select_into_matches_reference(
        n_weight in 0usize..200,
        n_fresh in 0usize..80,
        overlap_frac in 0usize..100,
        budget in 0usize..64,
        p_shift in 0i32..69,
        seed in 0u64..1_000,
    ) {
        let overlap = n_fresh * overlap_frac / 100;
        let (w, f) = corpus(n_weight, n_fresh, overlap);
        let mut buffers = AdaptiveBuffers::paper_default();
        let shift = p_shift - 28; // [-28, +40]: spans MIN_BUFFER..=36 for p
        for _ in 0..shift.unsigned_abs() {
            buffers.adapt(if shift > 0 {
                LureLane::PopularityGhost
            } else {
                LureLane::FreshnessGhost
            });
        }

        let mut rng_ref = SimRng::seed_from(seed);
        let expected = reference_select(&buffers, &w, &f, budget, &mut rng_ref);

        // Dirty the scratch with an unrelated selection first — reuse must
        // not leak state between calls.
        let mut scratch = SelectScratch::new();
        let mut out = Vec::new();
        let (dw, df) = corpus(50, 20, 3);
        let mut rng_dirty = SimRng::seed_from(seed ^ 0xDEAD);
        buffers.select_into(&dw, &df, 40, &mut rng_dirty, &mut scratch, &mut out);

        let mut rng_new = SimRng::seed_from(seed);
        buffers.select_into(&w, &f, budget, &mut rng_new, &mut scratch, &mut out);
        prop_assert_eq!(&out, &expected);
    }
}

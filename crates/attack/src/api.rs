//! The attacker interface.

use ch_sim::{CrashMode, SimTime};
use ch_wifi::mgmt::{Beacon, ProbeRequest};
use ch_wifi::{MacAddr, Ssid};

/// Where a lure SSID originally came from — the Fig. 6 "source" axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LureSource {
    /// Seeded offline from the WiGLE snapshot.
    Wigle,
    /// Harvested online from a direct probe.
    DirectProbe,
    /// Preloaded carrier auto-join SSID (§V-B extension).
    Carrier,
}

/// Which selection lane offered the lure — the Fig. 6 "buffer" axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LureLane {
    /// Popularity Buffer (top weights).
    Popularity,
    /// Popularity ghost list (exploration picks).
    PopularityGhost,
    /// Freshness Buffer (recent hits).
    Freshness,
    /// Freshness ghost list (exploration picks).
    FreshnessGhost,
    /// Plain ranked-database selection (MANA, preliminary City-Hunter).
    Database,
    /// Direct echo of a direct probe's SSID (the KARMA move).
    DirectReply,
}

/// One SSID the attacker offers a client in a probe-response burst.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lure {
    /// The advertised SSID.
    pub ssid: Ssid,
    /// Provenance (Fig. 6 source breakdown).
    pub source: LureSource,
    /// Selection lane (Fig. 6 buffer breakdown).
    pub lane: LureLane,
}

impl Lure {
    /// Creates a lure.
    pub fn new(ssid: Ssid, source: LureSource, lane: LureLane) -> Self {
        Lure { ssid, source, lane }
    }
}

/// An SSID-luring evil-twin attacker.
///
/// The scenario runner calls [`Attacker::respond_to_probe_into`] for every
/// probe it receives (reusing one lure buffer across the whole run), puts
/// the returned lures on the air (subject to the §III-A scan budget), and
/// reports successful associations back through [`Attacker::on_hit`].
/// [`Attacker::respond_to_probe`] is the allocating convenience form for
/// tests and one-off callers.
///
/// ```
/// use ch_attack::{Attacker, KarmaAttacker};
/// use ch_sim::SimTime;
/// use ch_wifi::mgmt::ProbeRequest;
/// use ch_wifi::{MacAddr, Ssid};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut attacker = KarmaAttacker::new(MacAddr::new([0x0a, 0, 0, 0, 0, 1]));
/// let victim = MacAddr::new([0xac, 0, 0, 0, 0, 2]);
/// let probe = ProbeRequest::direct(victim, Ssid::new("AP123")?);
/// let lures = attacker.respond_to_probe(SimTime::ZERO, &probe, 40);
/// assert_eq!(lures[0].ssid.as_str(), "AP123"); // the classic KARMA echo
/// # Ok(())
/// # }
/// ```
///
/// `Send` is a supertrait so a deployed attacker can live inside a city
/// shard that migrates between pool workers across epochs; every
/// generation is plain owned data, so the bound costs nothing.
pub trait Attacker: Send {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// The BSSID the attacker transmits under.
    fn bssid(&self) -> MacAddr;

    /// Chooses up to `budget` lures for this probe, into a caller-owned
    /// vector (cleared first). For direct probes the canonical move is a
    /// single mimicking reply; for broadcast probes the policy is what
    /// distinguishes the attackers.
    ///
    /// Implementations keep this path allocation-free at steady state: with
    /// a warm `out` and warm internal scratch, answering a probe must not
    /// touch the heap (the perfbench gate measures exactly this call).
    fn respond_to_probe_into(
        &mut self,
        now: SimTime,
        probe: &ProbeRequest,
        budget: usize,
        out: &mut Vec<Lure>,
    );

    /// Allocating convenience wrapper around
    /// [`respond_to_probe_into`](Attacker::respond_to_probe_into).
    fn respond_to_probe(&mut self, now: SimTime, probe: &ProbeRequest, budget: usize) -> Vec<Lure> {
        let mut out = Vec::new();
        self.respond_to_probe_into(now, probe, budget, &mut out);
        out
    }

    /// A client associated after receiving `lure` — update hit statistics,
    /// weights, freshness, adaptive sizes.
    fn on_hit(&mut self, now: SimTime, client: MacAddr, lure: &Lure);

    /// Current SSID-database size (Fig. 1(a) time series).
    fn database_len(&self) -> usize;

    /// Whether the §V-B deauthentication extension is active: the runner
    /// will then deauth locally-connected clients in range, forcing them to
    /// rescan.
    fn deauth_enabled(&self) -> bool {
        false
    }

    /// Next beacon the attacker wants on the air, if any. The runner polls
    /// this once per event-loop step; the default attacker beacons never
    /// (staying beacon-silent is itself a detector signature — the
    /// beacon-cloning evasion overrides this).
    fn beacon(&mut self, _now: SimTime) -> Option<Beacon> {
        None
    }

    /// Persist a checkpoint a later warm restart can restore (called by
    /// the runner on the fault plan's checkpoint schedule). Attackers
    /// with nothing durable to save ignore it.
    fn checkpoint(&mut self, _now: SimTime) {}

    /// The attacker process crashed and came back at `now` (fault
    /// injection). [`CrashMode::Warm`] restores the last checkpoint;
    /// [`CrashMode::Cold`] rebuilds from the offline seed state. The
    /// default is a no-op for attackers that keep no in-run state.
    fn on_crash_restart(&mut self, _now: SimTime, _mode: CrashMode) {}

    /// Concrete-type access for persistence layers that hold a
    /// `Box<dyn Attacker>` but must reach an attacker's typed state
    /// (the `ch-serve` checkpoint codec downcasts through this).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable form of [`Attacker::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Shared helper: the canonical reply to a *direct* probe — mimic the
/// requested SSID (all four attackers do this identically, §IV "for the
/// direct probes, City-Hunter utilizes the same approach as in KARMA").
pub fn direct_reply(probe: &ProbeRequest) -> Vec<Lure> {
    let mut out = Vec::with_capacity(1);
    direct_reply_into(probe, &mut out);
    out
}

/// [`direct_reply`] into a caller-owned vector (cleared first). The SSID
/// handoff is an `Arc` refcount bump, so a warm `out` makes this
/// allocation-free.
pub fn direct_reply_into(probe: &ProbeRequest, out: &mut Vec<Lure>) {
    debug_assert!(!probe.is_broadcast());
    out.clear();
    out.push(Lure::new(
        // ch-lint: allow(ssid-clone, hot-path-alloc) — Arc clone, no heap.
        probe.ssid.clone(),
        LureSource::DirectProbe,
        LureLane::DirectReply,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_reply_mimics() {
        let probe = ProbeRequest::direct(
            MacAddr::new([2, 0, 0, 0, 0, 1]),
            Ssid::new("CafeNet").unwrap(),
        );
        let lures = direct_reply(&probe);
        assert_eq!(lures.len(), 1);
        assert_eq!(lures[0].ssid.as_str(), "CafeNet");
        assert_eq!(lures[0].lane, LureLane::DirectReply);
        assert_eq!(lures[0].source, LureSource::DirectProbe);
    }
}

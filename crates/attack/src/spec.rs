//! Declarative attacker specification — the spec layer of the experiment
//! stack.
//!
//! Every place that deploys an attacker (the `ch-scenarios` runner, the
//! ablation matrix, sweeps, replication, and the `ch-defense` detection
//! evaluation) used to construct `KarmaAttacker`/`ManaAttacker`/… by
//! hand. [`AttackerSpec`] centralizes that: a spec is plain data naming
//! which generation to deploy (and, for the full City-Hunter, its
//! configuration), and [`AttackerSpec::build`] is the single constructor
//! the whole workspace shares.

use ch_geo::{GeoPoint, HeatMap, WigleSnapshot};
use ch_wifi::MacAddr;

use crate::{
    AttackSitePlan, Attacker, CityHunter, CityHunterConfig, EvasionSpec, EvasiveAttacker,
    KarmaAttacker, ManaAttacker, PrelimCityHunter,
};

/// Which attacker generation to deploy, as declarative data.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackerSpec {
    /// KARMA baseline (answers direct probes only; `h_b = 0`).
    Karma,
    /// MANA baseline (harvests direct probes, replays to broadcast).
    Mana,
    /// §III preliminary City-Hunter (WiGLE seed + untried tracking).
    Prelim,
    /// §IV full City-Hunter with the given configuration.
    CityHunter(CityHunterConfig),
    /// Any generation wrapped with the [`EvasionSpec`] counter-detection
    /// knobs (the arms-race experiment's attacker axis).
    Evasive {
        /// The wrapped generation.
        base: Box<AttackerSpec>,
        /// Which evasion knobs are on.
        evasion: EvasionSpec,
    },
}

impl AttackerSpec {
    /// The BSSID every experiment deploys its rogue AP under.
    pub fn default_bssid() -> MacAddr {
        MacAddr::from_index([0x0a, 0xbc, 0xde], 1)
    }

    /// The generation's display name (matches the built
    /// [`Attacker::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            AttackerSpec::Karma => "KARMA",
            AttackerSpec::Mana => "MANA",
            AttackerSpec::Prelim => "City-Hunter (preliminary)",
            AttackerSpec::CityHunter(_) => "City-Hunter",
            AttackerSpec::Evasive { base, .. } => base.name(),
        }
    }

    /// Wraps this spec with evasion knobs (a no-op spec change when every
    /// knob is off, so sweep axes can include "none" uniformly).
    pub fn with_evasion(self, evasion: EvasionSpec) -> Self {
        if evasion.is_none() {
            self
        } else {
            AttackerSpec::Evasive {
                base: Box::new(self),
                evasion,
            }
        }
    }

    /// Instantiates the attacker at a deployment site. `wigle`/`heat` are
    /// the offline data products (ignored by the baselines that predate
    /// them).
    pub fn build(
        &self,
        bssid: MacAddr,
        wigle: &WigleSnapshot,
        heat: &HeatMap,
        site: GeoPoint,
    ) -> Box<dyn Attacker> {
        match self {
            AttackerSpec::Karma => Box::new(KarmaAttacker::new(bssid)),
            AttackerSpec::Mana => Box::new(ManaAttacker::new(bssid)),
            AttackerSpec::Prelim => Box::new(PrelimCityHunter::new(bssid, wigle, heat, site)),
            AttackerSpec::CityHunter(config) => {
                Box::new(CityHunter::new(bssid, wigle, heat, site, config.clone()))
            }
            AttackerSpec::Evasive { base, evasion } => {
                let inner = base.build(bssid, wigle, heat, site);
                // Clone the legitimate AP nearest the deployment site — the
                // same neighbourhood the detector observes.
                let clone_target = if evasion.beacon_clone {
                    wigle.nearest_open_ssids(site, 1).into_iter().next()
                } else {
                    None
                };
                Box::new(EvasiveAttacker::new(inner, evasion.clone(), clone_target))
            }
        }
    }

    /// [`build`](AttackerSpec::build) from a precomputed
    /// [`AttackSitePlan`] — the campaign path: the WiGLE scans ran once
    /// per venue at context-build time, and every job deploys from the
    /// shared plan with bit-identical results.
    pub fn build_from_plan(&self, bssid: MacAddr, plan: &AttackSitePlan) -> Box<dyn Attacker> {
        match self {
            AttackerSpec::Karma => Box::new(KarmaAttacker::new(bssid)),
            AttackerSpec::Mana => Box::new(ManaAttacker::new(bssid)),
            AttackerSpec::Prelim => Box::new(PrelimCityHunter::from_plan(bssid, plan)),
            AttackerSpec::CityHunter(config) => {
                Box::new(CityHunter::from_plan(bssid, plan, config.clone()))
            }
            AttackerSpec::Evasive { base, evasion } => {
                let inner = base.build_from_plan(bssid, plan);
                // Plan prefixes equal smaller scans, so the head of the
                // nearby-open list is exactly `nearest_open_ssids(site, 1)`.
                let clone_target = if evasion.beacon_clone {
                    // ch-lint: allow(ssid-clone) — construction-time refcount bump.
                    plan.nearby_open.first().map(|(ssid, _)| ssid.clone())
                } else {
                    None
                };
                Box::new(EvasiveAttacker::new(inner, evasion.clone(), clone_target))
            }
        }
    }

    /// [`build`](AttackerSpec::build) under [`default_bssid`]
    /// (AttackerSpec::default_bssid) — what every experiment driver uses.
    pub fn build_default(
        &self,
        wigle: &WigleSnapshot,
        heat: &HeatMap,
        site: GeoPoint,
    ) -> Box<dyn Attacker> {
        self.build(Self::default_bssid(), wigle, heat, site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_geo::{CityModel, PhotoCollection};
    use ch_sim::SimRng;

    #[test]
    fn spec_builds_every_generation_with_matching_names() {
        let mut rng = SimRng::seed_from(5);
        let city = CityModel::synthesize(&mut rng);
        let wigle = WigleSnapshot::synthesize(&city, &mut rng);
        let photos = PhotoCollection::synthesize(&city, 200, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 50.0);
        let site = GeoPoint {
            east_m: 100.0,
            north_m: 100.0,
        };
        for spec in [
            AttackerSpec::Karma,
            AttackerSpec::Mana,
            AttackerSpec::Prelim,
            AttackerSpec::CityHunter(CityHunterConfig::default()),
        ] {
            let attacker = spec.build_default(&wigle, &heat, site);
            assert_eq!(attacker.name(), spec.name());
            assert_eq!(attacker.bssid(), AttackerSpec::default_bssid());
        }
    }

    #[test]
    fn evasive_spec_wraps_and_resolves_clone_target() {
        let mut rng = SimRng::seed_from(5);
        let city = CityModel::synthesize(&mut rng);
        let wigle = WigleSnapshot::synthesize(&city, &mut rng);
        let photos = PhotoCollection::synthesize(&city, 200, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 50.0);
        let site = GeoPoint {
            east_m: 100.0,
            north_m: 100.0,
        };

        // `with_evasion(none)` stays un-wrapped, so sweep axes compose.
        let plain = AttackerSpec::Karma.with_evasion(EvasionSpec::none());
        assert_eq!(plain, AttackerSpec::Karma);

        let spec = AttackerSpec::Mana.with_evasion(EvasionSpec::clone_beacons());
        assert_eq!(spec.name(), "MANA");
        let mut attacker = spec.build_default(&wigle, &heat, site);
        assert_eq!(attacker.name(), "MANA");
        // The clone target resolves to the legitimate AP nearest the site,
        // so the wrapper beacons under a real neighbourhood SSID.
        let expected = wigle.nearest_open_ssids(site, 1);
        let beacon = attacker.beacon(ch_sim::SimTime::from_secs(10)).unwrap();
        assert_eq!(Some(&beacon.ssid), expected.first());

        // Rotation moves the wire BSSID off the spec default.
        let rotating = AttackerSpec::Karma.with_evasion(EvasionSpec::rotate_every(
            ch_sim::SimDuration::from_secs(60),
        ));
        let rotated = rotating.build_default(&wigle, &heat, site);
        assert_ne!(rotated.bssid(), AttackerSpec::default_bssid());
    }
}

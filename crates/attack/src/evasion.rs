//! Attacker-side evasion: the counter-moves to `ch-detect`.
//!
//! A detector keys on static signatures (BSSID OUI, silent responders)
//! and behavioral tells (broadcast-bait bursts, PNL replay). Each knob in
//! [`EvasionSpec`] blunts one of those signals, at a cost:
//!
//! * **MAC/OUI rotation** — transmit under a fresh vendor-looking BSSID on
//!   a fixed schedule, wiping the detector's per-BSSID evidence. Costs
//!   nothing in h_b but multiplies the MACs ground truth must track.
//! * **Beacon cloning** — beacon like the legitimate AP nearest the
//!   deployment site (its SSID, the standard 100 TU interval), defeating
//!   silent-responder and interval fingerprints.
//! * **Response throttling** — cap probe responses per window, starving
//!   the broadcast-bait heuristic of distinct-SSID evidence. This is the
//!   knob that trades h_b for stealth directly.
//!
//! [`EvasiveAttacker`] wraps any [`Attacker`] (all four generations get
//! the knobs for free) and snapshots/restores its own evasion state
//! through the fault-injection checkpoint hooks, like the attackers it
//! wraps. Everything here is schedule arithmetic — no randomness — so
//! evasion composes with the determinism gates, and the wrapped
//! `respond_to_probe_into` stays allocation-free.

use ch_sim::{Cadence, CrashMode, SimDuration, SimTime};
use ch_wifi::channel::Channel;
use ch_wifi::mgmt::{Beacon, ProbeRequest};
use ch_wifi::{MacAddr, Ssid};

use crate::api::{Attacker, Lure};

/// Rotate the transmit BSSID on a fixed schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationSpec {
    /// How long each BSSID stays in use.
    pub period: SimDuration,
}

/// Cap probe responses per window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThrottleSpec {
    /// Responses allowed per window.
    pub max_responses: u32,
    /// Window length.
    pub window: SimDuration,
}

/// Declarative evasion configuration; [`EvasionSpec::none`] is a plain,
/// un-evasive attacker.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvasionSpec {
    /// MAC/OUI rotation schedule.
    pub rotation: Option<RotationSpec>,
    /// Beacon like the legitimate AP nearest the deployment site (the
    /// concrete SSID is resolved at build time from the WiGLE snapshot).
    pub beacon_clone: bool,
    /// Response rate cap.
    pub throttle: Option<ThrottleSpec>,
}

impl EvasionSpec {
    /// No evasion at all.
    pub fn none() -> Self {
        EvasionSpec::default()
    }

    /// `true` if every knob is off.
    pub fn is_none(&self) -> bool {
        self.rotation.is_none() && !self.beacon_clone && self.throttle.is_none()
    }

    /// Rotation-only evasion.
    pub fn rotate_every(period: SimDuration) -> Self {
        EvasionSpec {
            rotation: Some(RotationSpec { period }),
            ..EvasionSpec::default()
        }
    }

    /// Beacon-cloning-only evasion.
    pub fn clone_beacons() -> Self {
        EvasionSpec {
            beacon_clone: true,
            ..EvasionSpec::default()
        }
    }

    /// Throttling-only evasion.
    pub fn throttled(max_responses: u32, window: SimDuration) -> Self {
        EvasionSpec {
            throttle: Some(ThrottleSpec {
                max_responses,
                window,
            }),
            ..EvasionSpec::default()
        }
    }
}

/// Vendor-looking OUIs the rotation schedule cycles through (none are on
/// the detector's stock denylist, and none collide with the OUIs the sim
/// mints legitimate infrastructure from).
const ROTATION_OUIS: [[u8; 3]; 4] = [
    [0x00, 0x1a, 0x1e],
    [0x00, 0x1d, 0x7e],
    [0x00, 0x25, 0x9c],
    [0x00, 0x26, 0xbb],
];

/// How often a cloning attacker emits its cloned beacon. The sim's tap is
/// event-driven, so this is a sampled view of the real ~100 TU cadence.
const CLONE_BEACON_PERIOD: SimDuration = SimDuration::from_secs(2);

/// The BSSID in use during rotation `slot` (pure function — both the
/// attacker and ground-truth bookkeeping derive it).
fn rotated_bssid(base: MacAddr, slot: u64) -> MacAddr {
    let o = base.octets();
    let nic =
        u32::from_be_bytes([0, o[3], o[4], o[5]]).wrapping_add((slot as u32).wrapping_mul(131));
    MacAddr::from_index(
        ROTATION_OUIS[(slot % ROTATION_OUIS.len() as u64) as usize],
        nic,
    )
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct EvasionState {
    rotation_slot: u64,
    current_bssid: MacAddr,
    throttle_window: u64,
    sent_in_window: u32,
    beacons: Cadence,
}

impl EvasionState {
    fn boot(spec: &EvasionSpec, base: MacAddr) -> Self {
        EvasionState {
            rotation_slot: 0,
            current_bssid: if spec.rotation.is_some() {
                rotated_bssid(base, 0)
            } else {
                base
            },
            throttle_window: 0,
            sent_in_window: 0,
            beacons: Cadence::new(CLONE_BEACON_PERIOD, SimTime::ZERO),
        }
    }
}

/// Wraps any attacker with the [`EvasionSpec`] knobs.
pub struct EvasiveAttacker {
    inner: Box<dyn Attacker>,
    spec: EvasionSpec,
    base_bssid: MacAddr,
    /// SSID of the legitimate nearby AP to clone (resolved at build time);
    /// `None` leaves the beacon-clone knob inert.
    clone_target: Option<Ssid>,
    state: EvasionState,
    saved: Option<EvasionState>,
}

impl EvasiveAttacker {
    /// Wraps `inner`, which transmits under `base_bssid` when rotation is
    /// off. `clone_target` is the legitimate SSID to beacon as when
    /// `spec.beacon_clone` is set.
    pub fn new(inner: Box<dyn Attacker>, spec: EvasionSpec, clone_target: Option<Ssid>) -> Self {
        let base_bssid = inner.bssid();
        let state = EvasionState::boot(&spec, base_bssid);
        EvasiveAttacker {
            inner,
            spec,
            base_bssid,
            clone_target,
            state,
            saved: None,
        }
    }

    /// The active evasion spec.
    pub fn spec(&self) -> &EvasionSpec {
        &self.spec
    }

    /// The SSID the beacon-clone knob impersonates, if resolved.
    pub fn clone_target(&self) -> Option<&Ssid> {
        self.clone_target.as_ref()
    }

    /// The wrapped attacker (checkpoint export reaches through this).
    pub fn inner(&self) -> &dyn Attacker {
        self.inner.as_ref()
    }

    /// Mutable access to the wrapped attacker.
    pub fn inner_mut(&mut self) -> &mut dyn Attacker {
        self.inner.as_mut()
    }

    /// The live evasion state as plain numbers (checkpoint export): the
    /// rotation slot, current BSSID, throttle window ordinal and count,
    /// and the beacon schedule's `(next-due µs, period µs)`.
    pub fn export_state(&self) -> (u64, MacAddr, u64, u32, u64, u64) {
        (
            self.state.rotation_slot,
            self.state.current_bssid,
            self.state.throttle_window,
            self.state.sent_in_window,
            self.state.beacons.next_at().as_micros(),
            self.state.beacons.period().as_micros(),
        )
    }

    /// Restores [`EvasiveAttacker::export_state`] output.
    pub fn import_state(&mut self, state: (u64, MacAddr, u64, u32, u64, u64)) {
        let (rotation_slot, current_bssid, throttle_window, sent_in_window, next_us, period_us) =
            state;
        self.state = EvasionState {
            rotation_slot,
            current_bssid,
            throttle_window,
            sent_in_window,
            beacons: Cadence::new(
                SimDuration::from_micros(period_us),
                SimTime::from_micros(next_us),
            ),
        };
    }

    fn tick_rotation(&mut self, now: SimTime) {
        if let Some(rotation) = &self.spec.rotation {
            let slot = now.as_micros() / rotation.period.as_micros().max(1);
            if slot != self.state.rotation_slot {
                self.state.rotation_slot = slot;
                self.state.current_bssid = rotated_bssid(self.base_bssid, slot);
            }
        }
    }
}

impl Attacker for EvasiveAttacker {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn bssid(&self) -> MacAddr {
        self.state.current_bssid
    }

    fn respond_to_probe_into(
        &mut self,
        now: SimTime,
        probe: &ProbeRequest,
        budget: usize,
        out: &mut Vec<Lure>,
    ) {
        self.tick_rotation(now);
        let budget = match &self.spec.throttle {
            Some(throttle) => {
                let window = now.as_micros() / throttle.window.as_micros().max(1);
                if window != self.state.throttle_window {
                    self.state.throttle_window = window;
                    self.state.sent_in_window = 0;
                }
                let remaining = throttle
                    .max_responses
                    .saturating_sub(self.state.sent_in_window);
                budget.min(remaining as usize)
            }
            None => budget,
        };
        // The wrapped attacker still *hears* the probe even when throttled
        // to zero (harvesting continues); the cap lands on what goes on
        // the air.
        self.inner.respond_to_probe_into(now, probe, budget, out);
        out.truncate(budget);
        if self.spec.throttle.is_some() {
            self.state.sent_in_window = self.state.sent_in_window.saturating_add(out.len() as u32);
        }
    }

    fn on_hit(&mut self, now: SimTime, client: MacAddr, lure: &Lure) {
        self.inner.on_hit(now, client, lure);
    }

    fn database_len(&self) -> usize {
        self.inner.database_len()
    }

    fn deauth_enabled(&self) -> bool {
        self.inner.deauth_enabled()
    }

    fn beacon(&mut self, now: SimTime) -> Option<Beacon> {
        if !self.spec.beacon_clone {
            return None;
        }
        // ch-lint: allow(ssid-clone) — Arc refcount bump; the beacon poll
        // is outside the probe hot path.
        let target = self.clone_target.clone()?;
        // Drain the schedule (catch-up after a quiet stretch) but emit at
        // most one beacon per poll, so a backlog never floods the air.
        let mut due = false;
        while self.state.beacons.pop_due(now).is_some() {
            due = true;
        }
        if !due {
            return None;
        }
        self.tick_rotation(now);
        Some(Beacon::open(
            self.state.current_bssid,
            target,
            Channel::default(),
        ))
    }

    fn checkpoint(&mut self, now: SimTime) {
        self.saved = Some(self.state.clone());
        self.inner.checkpoint(now);
    }

    fn on_crash_restart(&mut self, now: SimTime, mode: CrashMode) {
        self.state = match mode {
            CrashMode::Warm => self
                .saved
                .clone()
                .unwrap_or_else(|| EvasionState::boot(&self.spec, self.base_bssid)),
            CrashMode::Cold => EvasionState::boot(&self.spec, self.base_bssid),
        };
        self.inner.on_crash_restart(now, mode);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KarmaAttacker;
    use ch_wifi::mgmt::ProbeRequest;

    fn client(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    fn base() -> MacAddr {
        MacAddr::from_index([0x0a, 0xbc, 0xde], 1)
    }

    fn wrap(spec: EvasionSpec, clone_target: Option<Ssid>) -> EvasiveAttacker {
        EvasiveAttacker::new(Box::new(KarmaAttacker::new(base())), spec, clone_target)
    }

    fn direct(name: &str) -> ProbeRequest {
        ProbeRequest::direct(client(1), Ssid::new(name).unwrap())
    }

    #[test]
    fn no_evasion_is_pure_passthrough() {
        let mut evasive = wrap(EvasionSpec::none(), None);
        assert!(EvasionSpec::none().is_none());
        assert_eq!(evasive.bssid(), base());
        assert_eq!(evasive.name(), "KARMA");
        let lures = evasive.respond_to_probe(SimTime::from_secs(9), &direct("AP123"), 40);
        assert_eq!(lures.len(), 1);
        assert_eq!(lures[0].ssid.as_str(), "AP123");
        assert!(evasive.beacon(SimTime::from_secs(10)).is_none());
        assert_eq!(evasive.database_len(), 1);
    }

    #[test]
    fn rotation_changes_bssid_on_schedule() {
        let spec = EvasionSpec::rotate_every(SimDuration::from_secs(60));
        assert!(!spec.is_none());
        let mut evasive = wrap(spec, None);
        // Slot 0 already disguises the denylisted base OUI.
        let first = evasive.bssid();
        assert_ne!(first, base());
        assert_eq!(first.oui(), ROTATION_OUIS[0]);
        evasive.respond_to_probe(SimTime::from_secs(10), &direct("A"), 40);
        assert_eq!(evasive.bssid(), first);
        evasive.respond_to_probe(SimTime::from_secs(70), &direct("B"), 40);
        let second = evasive.bssid();
        assert_ne!(second, first);
        assert_eq!(second.oui(), ROTATION_OUIS[1]);
        // The schedule is a pure function of time: same slot, same MAC.
        assert_eq!(rotated_bssid(base(), 1), second);
        // Rotated MACs still read as vendor-assigned.
        assert!(!second.is_locally_administered());
    }

    #[test]
    fn throttle_caps_responses_per_window() {
        let spec = EvasionSpec::throttled(2, SimDuration::from_secs(60));
        let mut evasive = wrap(spec, None);
        let mut sent = 0;
        for i in 0..5u64 {
            sent += evasive
                .respond_to_probe(SimTime::from_secs(i), &direct("AP"), 40)
                .len();
        }
        assert_eq!(sent, 2);
        // A fresh window re-arms the cap; harvesting continued throughout.
        let lures = evasive.respond_to_probe(SimTime::from_secs(61), &direct("AP"), 40);
        assert_eq!(lures.len(), 1);
        assert_eq!(evasive.database_len(), 1);
    }

    #[test]
    fn beacon_clone_emits_legit_looking_beacons() {
        let target = Ssid::new("CSL").unwrap();
        let mut evasive = wrap(EvasionSpec::clone_beacons(), Some(target.clone()));
        assert_eq!(evasive.clone_target(), Some(&target));
        let beacon = evasive.beacon(SimTime::from_secs(10)).unwrap();
        assert_eq!(beacon.ssid, target);
        assert_eq!(beacon.bssid, base());
        assert_eq!(beacon.interval_tu, Beacon::STANDARD_INTERVAL_TU);
        // At most one per poll, and none until the next period elapses.
        assert!(evasive.beacon(SimTime::from_secs(10)).is_none());
        assert!(evasive.beacon(SimTime::from_secs(13)).is_some());
        // Without a resolved target the knob is inert.
        let mut unresolved = wrap(EvasionSpec::clone_beacons(), None);
        assert!(unresolved.beacon(SimTime::from_secs(10)).is_none());
    }

    #[test]
    fn evasion_state_snapshots_and_restores() {
        let spec = EvasionSpec::throttled(2, SimDuration::from_secs(600));
        let mut evasive = wrap(spec, None);
        evasive.respond_to_probe(SimTime::from_secs(1), &direct("A"), 40);
        evasive.checkpoint(SimTime::from_secs(2));
        evasive.respond_to_probe(SimTime::from_secs(3), &direct("B"), 40);
        // Cap exhausted.
        assert!(evasive
            .respond_to_probe(SimTime::from_secs(4), &direct("C"), 40)
            .is_empty());
        // Warm restart restores the checkpoint: one response left.
        evasive.on_crash_restart(SimTime::from_secs(5), CrashMode::Warm);
        assert_eq!(
            evasive
                .respond_to_probe(SimTime::from_secs(6), &direct("D"), 40)
                .len(),
            1
        );
        assert!(evasive
            .respond_to_probe(SimTime::from_secs(7), &direct("E"), 40)
            .is_empty());
        // Cold restart resets the whole window budget.
        evasive.on_crash_restart(SimTime::from_secs(8), CrashMode::Cold);
        assert_eq!(
            evasive
                .respond_to_probe(SimTime::from_secs(9), &direct("F"), 40)
                .len(),
            1
        );
        // Warm restart with no checkpoint falls back to boot state.
        let mut fresh = wrap(EvasionSpec::throttled(1, SimDuration::from_secs(600)), None);
        fresh.on_crash_restart(SimTime::from_secs(1), CrashMode::Warm);
        assert_eq!(
            fresh
                .respond_to_probe(SimTime::from_secs(2), &direct("G"), 40)
                .len(),
            1
        );
    }
}

//! Per-client bookkeeping (§III-A's fix).
//!
//! "The attacker should record the MAC addresses of all the clients it
//! tried to connect but failed in the past, and maintains an un-tried SSID
//! list for each of them." We store the complement — the set already
//! *sent* per MAC — which is equivalent and much smaller.
//!
//! SSIDs are tracked as interned [`SsidId`]s: membership tests hash a u32
//! instead of a string, and the untried filter dedups through an
//! [`EpochSet`] in O(1) per candidate rather than scanning the picked list.

use ch_arc::EpochSet;
use ch_sim::{DetHashMap, DetHashSet};

use ch_wifi::{MacAddr, SsidId};

/// Tracks which SSIDs have been sent to which client.
#[derive(Debug, Clone, Default)]
pub struct ClientTracker {
    sent: DetHashMap<MacAddr, DetHashSet<SsidId>>,
}

impl ClientTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        ClientTracker::default()
    }

    /// Number of clients on record.
    pub fn client_count(&self) -> usize {
        self.sent.len()
    }

    /// How many SSIDs have been sent to `client` so far.
    pub fn sent_count(&self, client: MacAddr) -> usize {
        self.sent.get(&client).map_or(0, DetHashSet::len)
    }

    /// `true` if `ssid` was already sent to `client`.
    pub fn was_sent(&self, client: MacAddr, ssid: SsidId) -> bool {
        self.sent
            .get(&client)
            .is_some_and(|set| set.contains(&ssid))
    }

    /// Records that `ssid` has been sent to `client`.
    pub fn mark_sent(&mut self, client: MacAddr, ssid: SsidId) {
        self.sent.entry(client).or_default().insert(ssid);
    }

    /// Filters `candidates` down to those not yet sent to `client`,
    /// preserving order and collapsing duplicates, stopping after `limit`.
    pub fn select_untried(
        &self,
        client: MacAddr,
        candidates: &[SsidId],
        limit: usize,
    ) -> Vec<SsidId> {
        let mut seen = EpochSet::new();
        let mut out = Vec::new();
        self.select_untried_into(client, candidates, limit, &mut seen, &mut out);
        out
    }

    /// [`select_untried`](ClientTracker::select_untried) into caller-owned
    /// scratch: `out` receives the picks, `seen` is the dedup set. Both are
    /// cleared first and reused across calls, so the steady-state filter
    /// never allocates.
    pub fn select_untried_into(
        &self,
        client: MacAddr,
        candidates: &[SsidId],
        limit: usize,
        seen: &mut EpochSet,
        out: &mut Vec<SsidId>,
    ) {
        out.clear();
        seen.begin();
        let sent = self.sent.get(&client);
        for &ssid in candidates {
            if out.len() >= limit {
                break;
            }
            let already = sent.is_some_and(|set| set.contains(&ssid));
            if !already && seen.insert(ssid.index()) {
                out.push(ssid);
            }
        }
    }

    /// Forgets everything (database re-initialization between tests).
    pub fn clear(&mut self) {
        self.sent.clear();
    }

    /// The full sent-map as a deterministically ordered list (clients by
    /// MAC, SSIDs by interner index) — the checkpoint export. Nothing
    /// downstream iterates the tracker's internals, so restoring through
    /// [`ClientTracker::mark_sent`] is behaviourally exact.
    pub fn export_sorted(&self) -> Vec<(MacAddr, Vec<SsidId>)> {
        let mut entries: Vec<(MacAddr, Vec<SsidId>)> = self
            .sent
            .iter()
            .map(|(mac, set)| {
                let mut ids: Vec<SsidId> = set.iter().copied().collect();
                ids.sort_unstable_by_key(|id| id.index());
                (*mac, ids)
            })
            .collect();
        entries.sort_by_key(|(mac, _)| mac.octets());
        entries
    }

    /// Rebuilds the tracker from [`ClientTracker::export_sorted`] output.
    pub fn restore(&mut self, entries: Vec<(MacAddr, Vec<SsidId>)>) {
        self.sent.clear();
        for (mac, ids) in entries {
            for id in ids {
                self.mark_sent(mac, id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_wifi::{Ssid, SsidInterner};
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    fn intern(interner: &mut SsidInterner, s: &str) -> SsidId {
        interner.intern(&Ssid::new(s).unwrap())
    }

    #[test]
    fn untried_selection_skips_sent() {
        let mut interner = SsidInterner::new();
        let (a, b, c) = (
            intern(&mut interner, "A"),
            intern(&mut interner, "B"),
            intern(&mut interner, "C"),
        );
        let mut t = ClientTracker::new();
        t.mark_sent(mac(1), a);
        let pool = [a, b, c];
        let picked = t.select_untried(mac(1), &pool, 10);
        assert_eq!(picked, vec![b, c]);
        // A different client still gets "A".
        let picked2 = t.select_untried(mac(2), &pool, 10);
        assert_eq!(picked2.len(), 3);
    }

    #[test]
    fn limit_respected() {
        let mut interner = SsidInterner::new();
        let t = ClientTracker::new();
        let pool: Vec<SsidId> = (0..100)
            .map(|i| intern(&mut interner, &format!("S{i}")))
            .collect();
        let picked = t.select_untried(mac(1), &pool, 40);
        assert_eq!(picked.len(), 40);
    }

    #[test]
    fn duplicates_in_candidates_collapsed() {
        let mut interner = SsidInterner::new();
        let (a, b) = (intern(&mut interner, "A"), intern(&mut interner, "B"));
        let t = ClientTracker::new();
        let pool = [a, a, b];
        let picked = t.select_untried(mac(1), &pool, 10);
        assert_eq!(picked, vec![a, b]);
    }

    #[test]
    fn scratch_reuse_matches_allocating_path() {
        let mut interner = SsidInterner::new();
        let pool: Vec<SsidId> = (0..30)
            .map(|i| intern(&mut interner, &format!("S{i}")))
            .collect();
        let mut t = ClientTracker::new();
        t.mark_sent(mac(1), pool[0]);
        t.mark_sent(mac(1), pool[5]);
        let mut seen = EpochSet::new();
        let mut out = Vec::new();
        for limit in [0, 3, 10, 40] {
            t.select_untried_into(mac(1), &pool, limit, &mut seen, &mut out);
            assert_eq!(out, t.select_untried(mac(1), &pool, limit));
        }
    }

    #[test]
    fn counts_and_clear() {
        let mut interner = SsidInterner::new();
        let (a, b) = (intern(&mut interner, "A"), intern(&mut interner, "B"));
        let mut t = ClientTracker::new();
        t.mark_sent(mac(1), a);
        t.mark_sent(mac(1), b);
        t.mark_sent(mac(2), a);
        assert_eq!(t.client_count(), 2);
        assert_eq!(t.sent_count(mac(1)), 2);
        assert!(t.was_sent(mac(1), a));
        assert!(!t.was_sent(mac(2), b));
        t.clear();
        assert_eq!(t.client_count(), 0);
        assert_eq!(t.sent_count(mac(1)), 0);
    }

    proptest! {
        /// Marking everything selected, then selecting again, never repeats
        /// an SSID to the same client — the §III-A invariant.
        #[test]
        fn prop_never_resend(
            names in proptest::collection::vec("[a-z]{1,6}", 1..50),
            rounds in 1usize..6,
        ) {
            let mut interner = SsidInterner::new();
            let pool: Vec<SsidId> = names.iter().map(|n| intern(&mut interner, n)).collect();
            let mut t = ClientTracker::new();
            let client = mac(7);
            let mut seen = HashSet::new();
            for _ in 0..rounds {
                let picked = t.select_untried(client, &pool, 10);
                for &s in &picked {
                    prop_assert!(seen.insert(s), "resent {s}");
                    t.mark_sent(client, s);
                }
            }
        }
    }
}

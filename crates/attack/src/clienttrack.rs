//! Per-client bookkeeping (§III-A's fix).
//!
//! "The attacker should record the MAC addresses of all the clients it
//! tried to connect but failed in the past, and maintains an un-tried SSID
//! list for each of them." We store the complement — the set already
//! *sent* per MAC — which is equivalent and much smaller.

use ch_sim::{DetHashMap, DetHashSet};

use ch_wifi::{MacAddr, Ssid};

/// Tracks which SSIDs have been sent to which client.
#[derive(Debug, Clone, Default)]
pub struct ClientTracker {
    sent: DetHashMap<MacAddr, DetHashSet<Ssid>>,
}

impl ClientTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        ClientTracker::default()
    }

    /// Number of clients on record.
    pub fn client_count(&self) -> usize {
        self.sent.len()
    }

    /// How many SSIDs have been sent to `client` so far.
    pub fn sent_count(&self, client: MacAddr) -> usize {
        self.sent.get(&client).map_or(0, DetHashSet::len)
    }

    /// `true` if `ssid` was already sent to `client`.
    pub fn was_sent(&self, client: MacAddr, ssid: &Ssid) -> bool {
        self.sent.get(&client).is_some_and(|set| set.contains(ssid))
    }

    /// Records that `ssid` has been sent to `client`.
    pub fn mark_sent(&mut self, client: MacAddr, ssid: Ssid) {
        self.sent.entry(client).or_default().insert(ssid);
    }

    /// Filters `candidates` down to those not yet sent to `client`,
    /// preserving order, stopping after `limit`.
    pub fn select_untried<'a>(
        &self,
        client: MacAddr,
        candidates: impl IntoIterator<Item = &'a Ssid>,
        limit: usize,
    ) -> Vec<Ssid> {
        let sent = self.sent.get(&client);
        let mut picked = Vec::with_capacity(limit);
        for ssid in candidates {
            if picked.len() >= limit {
                break;
            }
            let already = sent.is_some_and(|set| set.contains(ssid));
            if !already && !picked.contains(ssid) {
                picked.push(ssid.clone());
            }
        }
        picked
    }

    /// Forgets everything (database re-initialization between tests).
    pub fn clear(&mut self) {
        self.sent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    fn ssid(s: &str) -> Ssid {
        Ssid::new(s).unwrap()
    }

    #[test]
    fn untried_selection_skips_sent() {
        let mut t = ClientTracker::new();
        t.mark_sent(mac(1), ssid("A"));
        let pool = [ssid("A"), ssid("B"), ssid("C")];
        let picked = t.select_untried(mac(1), pool.iter(), 10);
        assert_eq!(picked, vec![ssid("B"), ssid("C")]);
        // A different client still gets "A".
        let picked2 = t.select_untried(mac(2), pool.iter(), 10);
        assert_eq!(picked2.len(), 3);
    }

    #[test]
    fn limit_respected() {
        let t = ClientTracker::new();
        let pool: Vec<Ssid> = (0..100).map(|i| ssid(&format!("S{i}"))).collect();
        let picked = t.select_untried(mac(1), pool.iter(), 40);
        assert_eq!(picked.len(), 40);
    }

    #[test]
    fn duplicates_in_candidates_collapsed() {
        let t = ClientTracker::new();
        let pool = [ssid("A"), ssid("A"), ssid("B")];
        let picked = t.select_untried(mac(1), pool.iter(), 10);
        assert_eq!(picked, vec![ssid("A"), ssid("B")]);
    }

    #[test]
    fn counts_and_clear() {
        let mut t = ClientTracker::new();
        t.mark_sent(mac(1), ssid("A"));
        t.mark_sent(mac(1), ssid("B"));
        t.mark_sent(mac(2), ssid("A"));
        assert_eq!(t.client_count(), 2);
        assert_eq!(t.sent_count(mac(1)), 2);
        assert!(t.was_sent(mac(1), &ssid("A")));
        assert!(!t.was_sent(mac(2), &ssid("B")));
        t.clear();
        assert_eq!(t.client_count(), 0);
        assert_eq!(t.sent_count(mac(1)), 0);
    }

    proptest! {
        /// Marking everything selected, then selecting again, never repeats
        /// an SSID to the same client — the §III-A invariant.
        #[test]
        fn prop_never_resend(
            names in proptest::collection::vec("[a-z]{1,6}", 1..50),
            rounds in 1usize..6,
        ) {
            let pool: Vec<Ssid> = names.iter().map(|n| ssid(n)).collect();
            let mut t = ClientTracker::new();
            let client = mac(7);
            let mut seen = HashSet::new();
            for _ in 0..rounds {
                let picked = t.select_untried(client, pool.iter(), 10);
                for s in &picked {
                    prop_assert!(seen.insert(s.clone()), "resent {s}");
                    t.mark_sent(client, s.clone());
                }
            }
        }
    }
}

// Panic-freedom gate (clippy side of ch-lint rule R3); tests are exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # ch-attack — the evil-twin attackers
//!
//! Three generations of SSID-luring attack, all implementing the same
//! [`Attacker`] interface so the `ch-scenarios` runner can deploy any of
//! them into any venue:
//!
//! * [`KarmaAttacker`] — answers only *direct* probes by mimicking the
//!   requested SSID (Dai Zovi & Macaulay 2005). `h_b = 0` by construction.
//! * [`ManaAttacker`] — additionally harvests direct-probe SSIDs into a
//!   database and replays it to *broadcast* probes (Dominic & de Vries,
//!   DEF CON 22). Its §III flaws are reproduced deliberately: no WiGLE
//!   seed, and the whole database is replayed from the top every scan, so
//!   only the first ~40 SSIDs ever reach a client.
//! * [`PrelimCityHunter`] — §III's two fixes: a WiGLE seed (top-200 by
//!   heat + 100 nearby) and per-client *untried* tracking.
//! * [`CityHunter`] — §IV's full design: weighted database with online
//!   updates, a Popularity Buffer and Freshness Buffer with ghost lists,
//!   and ARC-style adaptive sizing; optional §V-B extensions
//!   (deauthentication forcing, carrier-SSID preload) via [`ext`].
//!
//! Any generation can additionally be wrapped in an [`EvasiveAttacker`]
//! ([`evasion`]) — MAC/OUI rotation, beacon cloning, and response
//! throttling against the `ch-detect` rogue-AP detector.
//!
//! The data plane is typed 802.11: attackers consume
//! [`ch_wifi::mgmt::ProbeRequest`]s and emit [`Lure`]s which the runner
//! turns into on-air probe responses.

pub mod api;
pub mod buffers;
pub mod cityhunter;
pub mod clienttrack;
pub mod db;
pub mod evasion;
pub mod ext;
pub mod karma;
pub mod mana;
pub mod plan;
pub mod prelim;
pub mod spec;

pub use api::{Attacker, Lure, LureLane, LureSource};
pub use cityhunter::{CityHunter, CityHunterConfig, Snapshot};
pub use clienttrack::ClientTracker;
pub use db::{DbEntry, SsidDatabase};
pub use evasion::{EvasionSpec, EvasiveAttacker, RotationSpec, ThrottleSpec};
pub use karma::KarmaAttacker;
pub use mana::ManaAttacker;
pub use plan::AttackSitePlan;
pub use prelim::PrelimCityHunter;
pub use spec::AttackerSpec;

//! The Popularity/Freshness buffer machinery (§IV-C).
//!
//! City-Hunter answers a broadcast probe from two buffers under a joint
//! budget of 40:
//!
//! * the **Popularity Buffer** (PB): the top `p` database SSIDs by weight;
//! * the **Freshness Buffer** (FB): the `f` most recently *hit* SSIDs;
//!
//! with `p + f = 40`. Each buffer has a 20-entry **ghost list** (the next
//! SSIDs just below the buffer's cut-off). On every selection, two random
//! ghosts from each list replace the lowest two picks of their buffer —
//! cheap exploration. A hit scored by a PB-ghost pick means the PB is too
//! small (`p += 1, f -= 1`); a hit by an FB-ghost pick grows the FB — the
//! ARC feedback loop (`ch-arc`) transplanted onto SSID selection.

use ch_arc::EpochSet;
use ch_sim::{ch_invariant, SimRng};
use ch_wifi::SsidId;

use crate::api::LureLane;

/// Ghost-list length (paper: "the size of both ghost lists is 20").
pub const GHOST_LEN: usize = 20;

/// Ghost picks per buffer per selection (paper: "randomly select 2 SSIDs
/// (10 %) from each of the ghost lists").
pub const GHOST_PICKS: usize = 2;

/// Minimum size of either buffer — adaptation never starves a side
/// completely.
pub const MIN_BUFFER: usize = 4;

/// Reusable scratch state for [`AdaptiveBuffers::select_into`].
///
/// Owns the intermediate picked list, the O(1) seen-set, the FB ghost pool
/// and the RNG sample buffer. All four grow once to their steady-state
/// capacity and are then reused, so a warm scratch makes selection
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SelectScratch {
    picked: Vec<(SsidId, LureLane)>,
    seen: EpochSet,
    ghost_pool: Vec<SsidId>,
    sample: Vec<usize>,
}

impl SelectScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SelectScratch::default()
    }
}

/// The adaptive size state and selection logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveBuffers {
    /// Popularity-buffer size.
    p: usize,
    /// Freshness-buffer size.
    f: usize,
    /// Joint budget (`p + f` stays equal to this).
    total: usize,
    /// `false` freezes the sizes (ablation: fixed split).
    adaptive: bool,
}

impl AdaptiveBuffers {
    /// Creates the buffers with an initial split.
    ///
    /// # Panics
    ///
    /// Panics if the split does not sum to `total` or violates
    /// [`MIN_BUFFER`].
    pub fn new(p: usize, f: usize, total: usize, adaptive: bool) -> Self {
        assert_eq!(p + f, total, "p + f must equal the budget");
        assert!(
            p >= MIN_BUFFER && f >= MIN_BUFFER,
            "initial sizes must respect MIN_BUFFER"
        );
        AdaptiveBuffers {
            p,
            f,
            total,
            adaptive,
        }
    }

    /// The paper's deployment default: budget 40, popularity-leaning
    /// initial split, adaptation on.
    pub fn paper_default() -> Self {
        AdaptiveBuffers::new(32, 8, 40, true)
    }

    /// Rebuilds buffers from checkpointed parts; `None` instead of a panic
    /// when the parts are inconsistent (a corrupt checkpoint must fall
    /// back to cold start, not abort the service).
    pub fn from_parts(p: usize, f: usize, total: usize, adaptive: bool) -> Option<Self> {
        if p + f != total || p < MIN_BUFFER || f < MIN_BUFFER {
            return None;
        }
        Some(AdaptiveBuffers {
            p,
            f,
            total,
            adaptive,
        })
    }

    /// Current `(p, f)` sizes.
    pub fn sizes(&self) -> (usize, usize) {
        (self.p, self.f)
    }

    /// Joint budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether adaptation is on (checkpoint export).
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// The §IV-C size invariants: the split always sums to the joint
    /// budget and neither buffer adapts below [`MIN_BUFFER`].
    fn check_invariants(&self) {
        ch_invariant!(
            self.p + self.f == self.total,
            "buffer split {}+{} drifted from budget {}",
            self.p,
            self.f,
            self.total
        );
        ch_invariant!(
            self.p >= MIN_BUFFER && self.f >= MIN_BUFFER,
            "buffer split ({}, {}) below MIN_BUFFER = {MIN_BUFFER}",
            self.p,
            self.f
        );
    }

    /// Selects up to `budget` SSIDs for one client.
    ///
    /// Allocating convenience wrapper around
    /// [`select_into`](AdaptiveBuffers::select_into) for tests and one-off
    /// callers; the runner's hot path reuses a [`SelectScratch`].
    pub fn select(
        &self,
        by_weight: &[SsidId],
        by_freshness: &[SsidId],
        budget: usize,
        rng: &mut SimRng,
    ) -> Vec<(SsidId, LureLane)> {
        let mut scratch = SelectScratch::new();
        let mut out = Vec::new();
        self.select_into(by_weight, by_freshness, budget, rng, &mut scratch, &mut out);
        out
    }

    /// Selects up to `budget` SSIDs for one client, into a caller-owned
    /// output vector.
    ///
    /// `by_weight` and `by_freshness` must already be filtered to SSIDs
    /// not yet sent to this client, best first. `out` receives `(id, lane)`
    /// pairs, deduplicated, in send order (popular first). When one list
    /// runs short the other fills the gap, so the budget is met whenever
    /// enough candidates exist.
    ///
    /// Dedup runs through the scratch's [`EpochSet`] — O(1) per candidate
    /// on interned ids, where the old string-keyed path scanned the picked
    /// list (O(budget²) per probe). With a warm `scratch`/`out` this makes
    /// no allocation at all; the RNG draw sequence and the selected
    /// `(ssid, lane)` ordering are bit-identical to the old path.
    pub fn select_into(
        &self,
        by_weight: &[SsidId],
        by_freshness: &[SsidId],
        budget: usize,
        rng: &mut SimRng,
        scratch: &mut SelectScratch,
        out: &mut Vec<(SsidId, LureLane)>,
    ) {
        self.check_invariants();
        out.clear();
        let budget = budget.min(self.total);
        // Scale the split if the runner hands us a smaller budget.
        let p_quota = (self.p * budget).div_ceil(self.total).min(budget);
        let f_quota = budget - p_quota;

        let SelectScratch {
            picked,
            seen,
            ghost_pool,
            sample,
        } = scratch;
        picked.clear();
        seen.begin();

        // --- Popularity side (picked first: an SSID that is both popular
        // and fresh is credited to the PB, so the FB lane measures the
        // *distinctive* freshness contribution, as in Fig. 6).
        let pb_core = p_quota.saturating_sub(GHOST_PICKS.min(p_quota));
        for &id in by_weight.iter().take(pb_core) {
            if seen.insert(id.index()) {
                picked.push((id, LureLane::Popularity));
            }
        }
        // PB ghost: two random picks from the next GHOST_LEN by weight.
        if p_quota > 0 {
            let pool = &by_weight[pb_core.min(by_weight.len())..];
            let pool_len = pool.len().min(GHOST_LEN);
            rng.sample_indices_into(pool_len, GHOST_PICKS.min(p_quota), sample);
            for &i in sample.iter() {
                let id = pool[i];
                if seen.insert(id.index()) {
                    picked.push((id, LureLane::PopularityGhost));
                }
            }
        }

        // --- Freshness side ------------------------------------------------
        let fb_core = f_quota.saturating_sub(GHOST_PICKS.min(f_quota));
        let mut fb_taken = 0usize;
        let mut cursor = 0usize;
        // Quota check *after* the take, mirroring the original iterator
        // loop: reaching the FB quota consumes (and drops) one extra fresh
        // candidate, so the ghost pool below starts one element later.
        while cursor < by_freshness.len() {
            let id = by_freshness[cursor];
            cursor += 1;
            if fb_taken >= fb_core {
                break;
            }
            if seen.insert(id.index()) {
                picked.push((id, LureLane::Freshness));
                fb_taken += 1;
            }
        }
        // FB ghost: two random picks from the next GHOST_LEN fresh SSIDs.
        if f_quota > 0 {
            ghost_pool.clear();
            for &id in &by_freshness[cursor..] {
                if ghost_pool.len() >= GHOST_LEN {
                    break;
                }
                if !seen.contains(id.index()) {
                    ghost_pool.push(id);
                }
            }
            rng.sample_indices_into(ghost_pool.len(), GHOST_PICKS.min(f_quota), sample);
            for &i in sample.iter() {
                let id = ghost_pool[i];
                // Budget check before the insert: a ghost rejected for
                // budget must stay eligible for the backfill lane below.
                if !seen.contains(id.index()) && picked.len() < budget {
                    seen.insert(id.index());
                    picked.push((id, LureLane::FreshnessGhost));
                }
            }
        }

        // --- Backfill: deeper weight-ranked SSIDs until the budget is met.
        for &id in by_weight {
            if picked.len() >= budget {
                break;
            }
            if seen.insert(id.index()) {
                picked.push((id, LureLane::Popularity));
            }
        }
        // Send order: popularity first (highest expected yield), then
        // freshness, then ghosts — clients may disappear mid-burst. Four
        // stable emission passes replace the old sort_by_key: same order,
        // but no sort-buffer allocation.
        for lane in [
            LureLane::Popularity,
            LureLane::Freshness,
            LureLane::PopularityGhost,
            LureLane::FreshnessGhost,
        ] {
            for &(id, l) in picked.iter() {
                if l == lane {
                    out.push((id, l));
                }
            }
        }
        // The lane quotas are constructed to sum to at most `budget`; the
        // truncate below is a release-mode safety net, so check first.
        ch_invariant!(
            out.len() <= budget,
            "selected {} SSIDs against a budget of {budget}",
            out.len()
        );
        out.truncate(budget);
    }

    /// Feeds back a hit: ghost-lane hits move the split one step toward
    /// the lane that scored (§IV-C), bounded by [`MIN_BUFFER`].
    pub fn adapt(&mut self, lane: LureLane) {
        if !self.adaptive {
            return;
        }
        match lane {
            LureLane::PopularityGhost if self.f > MIN_BUFFER => {
                self.p += 1;
                self.f -= 1;
            }
            LureLane::FreshnessGhost if self.p > MIN_BUFFER => {
                self.f += 1;
                self.p -= 1;
            }
            _ => {}
        }
        self.check_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_wifi::{Ssid, SsidInterner};
    use proptest::prelude::*;

    /// Interns `prefix{000..n}` and returns the ids; a shared interner
    /// makes overlapping prefixes produce overlapping ids, like the
    /// database does.
    fn ssids(interner: &mut SsidInterner, prefix: &str, n: usize) -> Vec<SsidId> {
        (0..n)
            .map(|i| interner.intern(&Ssid::new_lossy(format!("{prefix}{i:03}"))))
            .collect()
    }

    #[test]
    fn paper_default_sums_to_forty() {
        let b = AdaptiveBuffers::paper_default();
        let (p, f) = b.sizes();
        assert_eq!(p + f, 40);
        assert_eq!(b.total(), 40);
    }

    #[test]
    fn selection_fills_budget_and_dedups() {
        let b = AdaptiveBuffers::paper_default();
        let mut interner = SsidInterner::new();
        let weight = ssids(&mut interner, "w", 100);
        let fresh = ssids(&mut interner, "w", 10); // freshness overlaps weight list
        let mut rng = SimRng::seed_from(1);
        let picked = b.select(&weight, &fresh, 40, &mut rng);
        assert_eq!(picked.len(), 40);
        let mut ids: Vec<SsidId> = picked.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40, "duplicates in selection");
    }

    #[test]
    fn lanes_present_when_both_lists_rich() {
        let b = AdaptiveBuffers::paper_default();
        let mut interner = SsidInterner::new();
        let weight = ssids(&mut interner, "w", 200);
        let fresh = ssids(&mut interner, "f", 50);
        let mut rng = SimRng::seed_from(2);
        let picked = b.select(&weight, &fresh, 40, &mut rng);
        let count = |lane: LureLane| picked.iter().filter(|(_, l)| *l == lane).count();
        assert!(count(LureLane::Popularity) >= 20);
        assert!(count(LureLane::Freshness) >= 1);
        assert_eq!(count(LureLane::PopularityGhost), GHOST_PICKS);
        assert!(count(LureLane::FreshnessGhost) <= GHOST_PICKS);
        assert_eq!(picked.len(), 40);
    }

    #[test]
    fn empty_freshness_falls_back_to_popularity() {
        let b = AdaptiveBuffers::paper_default();
        let mut interner = SsidInterner::new();
        let weight = ssids(&mut interner, "w", 100);
        let mut rng = SimRng::seed_from(3);
        let picked = b.select(&weight, &[], 40, &mut rng);
        assert_eq!(picked.len(), 40);
        assert!(picked
            .iter()
            .all(|(_, l)| matches!(l, LureLane::Popularity | LureLane::PopularityGhost)));
    }

    #[test]
    fn short_candidate_lists_shrink_selection() {
        let b = AdaptiveBuffers::paper_default();
        let mut interner = SsidInterner::new();
        let weight = ssids(&mut interner, "w", 7);
        let mut rng = SimRng::seed_from(4);
        let picked = b.select(&weight, &[], 40, &mut rng);
        assert_eq!(picked.len(), 7, "no invention of SSIDs");
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // One warm scratch across many different calls must give exactly
        // the allocating wrapper's answer each time.
        let b = AdaptiveBuffers::paper_default();
        let mut interner = SsidInterner::new();
        let weight = ssids(&mut interner, "w", 120);
        let fresh = ssids(&mut interner, "f", 30);
        let mut scratch = SelectScratch::new();
        let mut out = Vec::new();
        for (budget, seed) in [(40usize, 1u64), (7, 2), (1, 3), (40, 4), (13, 5)] {
            let mut rng_a = SimRng::seed_from(seed);
            let mut rng_b = rng_a.clone();
            b.select_into(&weight, &fresh, budget, &mut rng_a, &mut scratch, &mut out);
            assert_eq!(out, b.select(&weight, &fresh, budget, &mut rng_b));
            // Identical RNG consumption on both paths.
            assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        }
    }

    #[test]
    fn adaptation_direction_and_bounds() {
        let mut b = AdaptiveBuffers::new(32, 8, 40, true);
        b.adapt(LureLane::FreshnessGhost);
        assert_eq!(b.sizes(), (31, 9));
        b.adapt(LureLane::PopularityGhost);
        assert_eq!(b.sizes(), (32, 8));
        // Non-ghost lanes don't adapt.
        b.adapt(LureLane::Popularity);
        b.adapt(LureLane::Freshness);
        b.adapt(LureLane::Database);
        assert_eq!(b.sizes(), (32, 8));
        // Bounds: drive f to its floor.
        for _ in 0..50 {
            b.adapt(LureLane::PopularityGhost);
        }
        assert_eq!(b.sizes(), (36, MIN_BUFFER));
        // And p to its floor.
        for _ in 0..50 {
            b.adapt(LureLane::FreshnessGhost);
        }
        assert_eq!(b.sizes(), (MIN_BUFFER, 36));
    }

    #[test]
    fn frozen_buffers_never_move() {
        let mut b = AdaptiveBuffers::new(20, 20, 40, false);
        b.adapt(LureLane::PopularityGhost);
        b.adapt(LureLane::FreshnessGhost);
        assert_eq!(b.sizes(), (20, 20));
    }

    #[test]
    #[should_panic(expected = "p + f must equal the budget")]
    fn bad_split_rejected() {
        let _ = AdaptiveBuffers::new(30, 5, 40, true);
    }

    #[test]
    fn invariant_catches_split_drift() {
        // A split that no longer sums to the budget must trip the check on
        // the next adaptation, even for a lane that would not move it.
        let mut b = AdaptiveBuffers::paper_default();
        b.p += 1; // corrupt: 33 + 8 != 40
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.adapt(LureLane::Popularity);
        }))
        .expect_err("drifted split must panic");
        let msg = err.downcast_ref::<String>().expect("formatted message");
        assert!(msg.contains("drifted from budget"), "{msg}");
    }

    #[test]
    fn invariant_catches_starved_buffer_on_select() {
        let mut b = AdaptiveBuffers::paper_default();
        b.p = b.total - 1;
        b.f = 1; // below MIN_BUFFER
        let mut interner = SsidInterner::new();
        let weight = ssids(&mut interner, "w", 50);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = SimRng::seed_from(9);
            b.select(&weight, &[], 40, &mut rng);
        }))
        .expect_err("starved buffer must panic");
        let msg = err.downcast_ref::<String>().expect("formatted message");
        assert!(msg.contains("MIN_BUFFER"), "{msg}");
    }

    #[test]
    fn selection_stays_within_budget_for_all_small_budgets() {
        // Exercises the `out.len() <= budget` invariant across the full
        // quota-splitting range, including budgets below GHOST_PICKS.
        let b = AdaptiveBuffers::paper_default();
        let mut interner = SsidInterner::new();
        let weight = ssids(&mut interner, "w", 120);
        let fresh = ssids(&mut interner, "f", 60);
        for budget in 1..=40 {
            let mut rng = SimRng::seed_from(budget as u64);
            let picked = b.select(&weight, &fresh, budget, &mut rng);
            assert!(picked.len() <= budget, "budget {budget} overshot");
        }
    }

    proptest! {
        /// Selection never exceeds the budget, never duplicates, and only
        /// returns offered candidates.
        #[test]
        fn prop_selection_sound(
            n_weight in 0usize..150,
            n_fresh in 0usize..60,
            budget in 1usize..41,
            seed in 0u64..1_000,
        ) {
            let b = AdaptiveBuffers::paper_default();
            let mut interner = SsidInterner::new();
            let weight = ssids(&mut interner, "w", n_weight);
            let fresh = ssids(&mut interner, "w", n_fresh); // subset naming → overlaps
            let mut rng = SimRng::seed_from(seed);
            let picked = b.select(&weight, &fresh, budget, &mut rng);
            prop_assert!(picked.len() <= budget);
            let mut ids: Vec<SsidId> = picked.iter().map(|&(id, _)| id).collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicates");
            for &(id, _) in &picked {
                prop_assert!(weight.contains(&id) || fresh.contains(&id));
            }
        }

        /// p + f is conserved under any adaptation sequence.
        #[test]
        fn prop_split_conserved(lanes in proptest::collection::vec(0u8..6, 0..200)) {
            let mut b = AdaptiveBuffers::paper_default();
            for l in lanes {
                let lane = match l {
                    0 => LureLane::Popularity,
                    1 => LureLane::PopularityGhost,
                    2 => LureLane::Freshness,
                    3 => LureLane::FreshnessGhost,
                    4 => LureLane::Database,
                    _ => LureLane::DirectReply,
                };
                b.adapt(lane);
                let (p, f) = b.sizes();
                prop_assert_eq!(p + f, 40);
                prop_assert!(p >= MIN_BUFFER && f >= MIN_BUFFER);
            }
        }
    }
}

//! The full City-Hunter attacker (§IV).

use ch_arc::EpochSet;
use ch_geo::netdb::carrier_ssids;
use ch_geo::{GeoPoint, HeatMap, WigleSnapshot};
use ch_sim::{CrashMode, SimRng, SimTime};
use ch_wifi::mgmt::ProbeRequest;
use ch_wifi::{MacAddr, SsidId};

use crate::api::LureLane;
use crate::api::{direct_reply_into, Attacker, Lure, LureSource};
use crate::buffers::{AdaptiveBuffers, SelectScratch};
use crate::clienttrack::ClientTracker;
use crate::db::SsidDatabase;
use crate::plan::AttackSitePlan;

/// Reusable per-attacker scratch: candidate lists, dedup set, and the
/// buffer-selection scratch. Warmed up over the first few probes, then the
/// broadcast path never allocates again.
#[derive(Debug, Clone, Default)]
struct HunterScratch {
    seen: EpochSet,
    by_weight: Vec<SsidId>,
    by_freshness: Vec<SsidId>,
    select: SelectScratch,
    picked: Vec<(SsidId, LureLane)>,
}

/// Feature switches for City-Hunter — every §IV/§V design decision is a
/// flag so the ablation bench can turn it off in isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct CityHunterConfig {
    /// Seed the database from WiGLE (off → MANA-like cold start).
    pub use_wigle: bool,
    /// Track per-client sent SSIDs and never repeat (§III-A fix).
    pub untried_tracking: bool,
    /// Use the freshness buffer at all (off → pure popularity ranking).
    pub use_freshness: bool,
    /// Adapt the PB/FB split via ghost hits (off → frozen split).
    pub adaptive_sizing: bool,
    /// §V-B: deauthenticate locally-connected clients to force rescans.
    pub deauth: bool,
    /// §V-B: preload carrier auto-join SSIDs.
    pub carrier_preload: bool,
    /// RNG seed for ghost-list exploration picks.
    pub seed: u64,
}

impl Default for CityHunterConfig {
    fn default() -> Self {
        CityHunterConfig {
            use_wigle: true,
            untried_tracking: true,
            use_freshness: true,
            adaptive_sizing: true,
            deauth: false,
            carrier_preload: false,
            seed: 0xC17_4B17,
        }
    }
}

/// A restorable checkpoint of everything City-Hunter learns online: the
/// weighted SSID database, the PB/FB buffers (ghost lists and adaptive
/// split included), and the per-client untried tracker. Taken by
/// [`Attacker::checkpoint`], applied by [`CityHunter::restore`] when a
/// crashed attacker comes back warm.
#[derive(Debug, Clone)]
pub struct Snapshot {
    db: SsidDatabase,
    buffers: AdaptiveBuffers,
    tracker: ClientTracker,
}

/// The §IV City-Hunter: weighted WiGLE-seeded database, online updating,
/// PB/FB selection with ghost-list exploration and ARC-style adaptive
/// sizing, per-client untried tracking, and the optional §V-B extensions.
#[derive(Debug, Clone)]
pub struct CityHunter {
    bssid: MacAddr,
    config: CityHunterConfig,
    db: SsidDatabase,
    buffers: AdaptiveBuffers,
    tracker: ClientTracker,
    rng: SimRng,
    scratch: HunterScratch,
    /// Construction-time state — what a cold restart falls back to.
    boot: Box<Snapshot>,
    /// The most recent checkpoint, if any.
    saved: Option<Box<Snapshot>>,
    restarts: u32,
}

impl CityHunter {
    /// Builds the attacker with its database initialized per the config
    /// (step 1 of Fig. 3). Runs the WiGLE scans itself; campaign code
    /// precomputes them once and uses [`CityHunter::from_plan`].
    pub fn new(
        bssid: MacAddr,
        wigle: &WigleSnapshot,
        heat: &HeatMap,
        site: GeoPoint,
        config: CityHunterConfig,
    ) -> Self {
        Self::from_plan(bssid, &AttackSitePlan::build(wigle, heat, site), config)
    }

    /// [`CityHunter::new`] from a precomputed [`AttackSitePlan`]: seeds
    /// the database from the plan's `(Ssid, weight)` lists in the exact
    /// insertion order the scan-based constructor uses, so interned ids
    /// and all downstream draws are bit-identical.
    pub fn from_plan(bssid: MacAddr, plan: &AttackSitePlan, config: CityHunterConfig) -> Self {
        let mut db = SsidDatabase::new();
        if config.use_wigle {
            for (ssid, w) in &plan.by_heat {
                // ch-lint: allow(ssid-clone) — construction-time refcount bump.
                db.seed_from_wigle(ssid.clone(), *w, SimTime::ZERO);
            }
            for (ssid, w) in &plan.nearby_open {
                // ch-lint: allow(ssid-clone) — construction-time refcount bump.
                db.seed_from_wigle(ssid.clone(), *w, SimTime::ZERO);
            }
        }
        if config.carrier_preload {
            // Carrier SSIDs rank above everything: every subscribing iOS
            // device auto-joins them (§V-B).
            for ssid in carrier_ssids() {
                db.seed_carrier(ssid, 500.0, SimTime::ZERO);
            }
        }
        let buffers = if config.use_freshness {
            AdaptiveBuffers::new(32, 8, 40, config.adaptive_sizing)
        } else {
            // Freshness disabled: all 40 slots belong to popularity (the
            // minimum FB allocation is never consulted because the
            // freshness candidate list is suppressed below).
            AdaptiveBuffers::new(36, 4, 40, false)
        };
        let rng = SimRng::seed_from(config.seed);
        let boot = Box::new(Snapshot {
            db: db.clone(),
            buffers: buffers.clone(),
            tracker: ClientTracker::new(),
        });
        CityHunter {
            bssid,
            config,
            db,
            buffers,
            tracker: ClientTracker::new(),
            rng,
            scratch: HunterScratch::default(),
            boot,
            saved: None,
            restarts: 0,
        }
    }

    /// Captures the current learned state as a restorable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            db: self.db.clone(),
            buffers: self.buffers.clone(),
            tracker: self.tracker.clone(),
        }
    }

    /// Restores a previously taken [`Snapshot`], discarding everything
    /// learned since it was captured. Selection scratch and the
    /// exploration RNG are left alone — they carry no learned state.
    pub fn restore(&mut self, snap: &Snapshot) {
        self.db = snap.db.clone();
        self.buffers = snap.buffers.clone();
        self.tracker = snap.tracker.clone();
    }

    /// How many crash/restart cycles this attacker has absorbed.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Read access to the database.
    pub fn database(&self) -> &SsidDatabase {
        &self.db
    }

    /// Current `(popularity, freshness)` buffer sizes (Fig. 3 step 3
    /// diagnostics).
    pub fn buffer_sizes(&self) -> (usize, usize) {
        self.buffers.sizes()
    }

    /// Read access to the per-client tracker.
    pub fn tracker(&self) -> &ClientTracker {
        &self.tracker
    }

    /// The configuration in force.
    pub fn config(&self) -> &CityHunterConfig {
        &self.config
    }

    /// Read access to the PB/FB buffer state (checkpoint export).
    pub fn buffers(&self) -> &AdaptiveBuffers {
        &self.buffers
    }

    /// The exploration RNG's full state (checkpoint export) — restoring it
    /// via [`CityHunter::restore_state`] continues ghost picks exactly
    /// where the checkpointed process left off.
    pub fn rng_state(&self) -> [u64; 5] {
        self.rng.save_state()
    }

    /// Overwrites the full in-run state from an external checkpoint: the
    /// learned database, buffer split, per-client tracker, the exploration
    /// RNG mid-stream, and the restart counter. Unlike
    /// [`CityHunter::restore`] (the in-process warm-crash path), this is
    /// the cross-process recovery path — the RNG resumes rather than
    /// reseeds, so a restored service replays byte-identically.
    pub fn restore_state(
        &mut self,
        db: SsidDatabase,
        buffers: AdaptiveBuffers,
        tracker: ClientTracker,
        rng_state: [u64; 5],
        restarts: u32,
    ) {
        self.db = db;
        self.buffers = buffers;
        self.tracker = tracker;
        self.rng = SimRng::from_state(rng_state);
        self.restarts = restarts;
    }
}

impl Attacker for CityHunter {
    fn name(&self) -> &'static str {
        "City-Hunter"
    }

    fn bssid(&self) -> MacAddr {
        self.bssid
    }

    fn respond_to_probe_into(
        &mut self,
        now: SimTime,
        probe: &ProbeRequest,
        budget: usize,
        out: &mut Vec<Lure>,
    ) {
        if !probe.is_broadcast() {
            // Step 2 (online updating): harvest, then reply KARMA-style.
            self.db.observe_direct_probe(&probe.ssid, now);
            direct_reply_into(probe, out);
            return;
        }
        out.clear();

        // Step 3: build candidate lists, filtered to this client's untried
        // SSIDs when tracking is on. Everything below runs on interned ids
        // and warm scratch — no heap traffic at steady state.
        let client = probe.source;
        let (ranked, fresh) = self.db.ranked_and_fresh();
        let by_weight: &[SsidId] = if self.config.untried_tracking {
            self.tracker.select_untried_into(
                client,
                ranked,
                ranked.len(),
                &mut self.scratch.seen,
                &mut self.scratch.by_weight,
            );
            &self.scratch.by_weight
        } else {
            ranked
        };
        let by_freshness: &[SsidId] = if self.config.use_freshness {
            if self.config.untried_tracking {
                self.tracker.select_untried_into(
                    client,
                    fresh,
                    fresh.len(),
                    &mut self.scratch.seen,
                    &mut self.scratch.by_freshness,
                );
                &self.scratch.by_freshness
            } else {
                fresh
            }
        } else {
            &[]
        };

        // Step 4: select and send.
        self.buffers.select_into(
            by_weight,
            by_freshness,
            budget,
            &mut self.rng,
            &mut self.scratch.select,
            &mut self.scratch.picked,
        );
        for &(id, lane) in &self.scratch.picked {
            if self.config.untried_tracking {
                self.tracker.mark_sent(client, id);
            }
            let source = self.db.source_of(id).unwrap_or(LureSource::Wigle);
            // resolve() hands back an Arc; the clone is a refcount bump,
            // the sanctioned lure handoff.
            // ch-lint: allow(hot-path-alloc)
            out.push(Lure::new(self.db.resolve(id).clone(), source, lane));
        }
    }

    fn on_hit(&mut self, now: SimTime, _client: MacAddr, lure: &Lure) {
        // Step 2 (online updating): weight bump + freshness stamp, and the
        // ghost feedback that adapts the buffer split.
        self.db.record_hit(&lure.ssid, now);
        self.buffers.adapt(lure.lane);
    }

    fn database_len(&self) -> usize {
        self.db.len()
    }

    fn deauth_enabled(&self) -> bool {
        self.config.deauth
    }

    fn checkpoint(&mut self, _now: SimTime) {
        self.saved = Some(Box::new(self.snapshot()));
    }

    fn on_crash_restart(&mut self, _now: SimTime, mode: CrashMode) {
        self.restarts += 1;
        let snap = match mode {
            CrashMode::Cold => self.boot.clone(),
            // Warm with no checkpoint yet degrades to a cold start.
            CrashMode::Warm => self.saved.clone().unwrap_or_else(|| self.boot.clone()),
        };
        self.restore(&snap);
        // The restarted process reseeds its exploration RNG: derived
        // from the configured seed and the restart ordinal, so reruns
        // of the same fault schedule stay bit-identical.
        self.rng = SimRng::seed_from(
            self.config.seed ^ u64::from(self.restarts).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelim::WIGLE_TOP_BY_HEAT;
    use ch_geo::{CityModel, PhotoCollection};
    use ch_wifi::Ssid;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    struct Fixture {
        wigle: WigleSnapshot,
        heat: HeatMap,
        site: GeoPoint,
    }

    fn fixture() -> Fixture {
        let mut rng = SimRng::seed_from(30);
        let city = CityModel::synthesize(&mut rng);
        let wigle = WigleSnapshot::synthesize(&city, &mut rng);
        let photos = PhotoCollection::synthesize(&city, 20_000, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 100.0);
        let site = city.pois()[5].location;
        Fixture { wigle, heat, site }
    }

    fn hunter(config: CityHunterConfig) -> CityHunter {
        let f = fixture();
        CityHunter::new(mac(9), &f.wigle, &f.heat, f.site, config)
    }

    #[test]
    fn seeded_database_and_identity() {
        let ch = hunter(CityHunterConfig::default());
        assert!(ch.database_len() >= WIGLE_TOP_BY_HEAT);
        assert_eq!(ch.name(), "City-Hunter");
        assert_eq!(ch.bssid(), mac(9));
        assert!(!ch.deauth_enabled());
        assert_eq!(ch.buffer_sizes().0 + ch.buffer_sizes().1, 40);
    }

    #[test]
    fn no_wigle_flag_starts_cold() {
        let ch = hunter(CityHunterConfig {
            use_wigle: false,
            ..CityHunterConfig::default()
        });
        assert_eq!(ch.database_len(), 0);
    }

    #[test]
    fn carrier_preload_tops_the_ranking() {
        let mut ch = hunter(CityHunterConfig {
            carrier_preload: true,
            ..CityHunterConfig::default()
        });
        let lures = ch.respond_to_probe(SimTime::ZERO, &ProbeRequest::broadcast(mac(1)), 40);
        let carriers = carrier_ssids();
        let offered_carriers = lures.iter().filter(|l| carriers.contains(&l.ssid)).count();
        assert_eq!(
            offered_carriers,
            carriers.len(),
            "all carriers offered first"
        );
        assert!(lures
            .iter()
            .filter(|l| carriers.contains(&l.ssid))
            .all(|l| l.source == LureSource::Carrier));
    }

    #[test]
    fn budget_respected_and_untried_advances() {
        let mut ch = hunter(CityHunterConfig::default());
        let probe = ProbeRequest::broadcast(mac(1));
        let first = ch.respond_to_probe(SimTime::ZERO, &probe, 40);
        assert_eq!(first.len(), 40);
        let second = ch.respond_to_probe(SimTime::from_secs(60), &probe, 40);
        for lure in &second {
            assert!(!first.iter().any(|l| l.ssid == lure.ssid));
        }
        assert_eq!(ch.tracker().sent_count(mac(1)), 80);
    }

    #[test]
    fn tracking_disabled_repeats_head() {
        let mut ch = hunter(CityHunterConfig {
            untried_tracking: false,
            use_freshness: false,
            adaptive_sizing: false,
            ..CityHunterConfig::default()
        });
        let probe = ProbeRequest::broadcast(mac(1));
        let first: Vec<Ssid> = ch
            .respond_to_probe(SimTime::ZERO, &probe, 40)
            .into_iter()
            .map(|l| l.ssid)
            .collect();
        let second: Vec<Ssid> = ch
            .respond_to_probe(SimTime::from_secs(60), &probe, 40)
            .into_iter()
            .map(|l| l.ssid)
            .collect();
        // Ghost picks randomize two slots; the overlap must still be heavy.
        let overlap = first.iter().filter(|s| second.contains(s)).count();
        assert!(overlap >= 36, "overlap {overlap}");
    }

    #[test]
    fn hits_feed_freshness_buffer() {
        let mut ch = hunter(CityHunterConfig::default());
        // Walk client 1 deep into the ranking (three scans), then score a
        // hit with a deep SSID — one whose weight (even after the hit
        // bonus) stays below the popularity head.
        let probe1 = ProbeRequest::broadcast(mac(1));
        let _ = ch.respond_to_probe(SimTime::ZERO, &probe1, 40);
        let _ = ch.respond_to_probe(SimTime::from_secs(60), &probe1, 40);
        let deep = ch.respond_to_probe(SimTime::from_secs(120), &probe1, 40);
        let hit = deep[10].clone();
        ch.on_hit(SimTime::from_secs(125), mac(1), &hit);
        // A fresh client's selection now carries that SSID via the
        // freshness lane — the PB would never have reached it.
        let lures2 = ch.respond_to_probe(
            SimTime::from_secs(126),
            &ProbeRequest::broadcast(mac(2)),
            40,
        );
        let via_fresh: Vec<_> = lures2
            .iter()
            .filter(|l| l.lane == LureLane::Freshness)
            .collect();
        assert_eq!(via_fresh.len(), 1, "{lures2:?}");
        assert_eq!(via_fresh[0].ssid, hit.ssid);
    }

    #[test]
    fn ghost_hits_move_the_split() {
        let mut ch = hunter(CityHunterConfig::default());
        let (p0, f0) = ch.buffer_sizes();
        ch.on_hit(
            SimTime::ZERO,
            mac(1),
            &Lure::new(
                Ssid::new("X").unwrap(),
                LureSource::Wigle,
                LureLane::FreshnessGhost,
            ),
        );
        let (p1, f1) = ch.buffer_sizes();
        assert_eq!(p1, p0 - 1);
        assert_eq!(f1, f0 + 1);
    }

    #[test]
    fn frozen_config_never_adapts() {
        let mut ch = hunter(CityHunterConfig {
            adaptive_sizing: false,
            ..CityHunterConfig::default()
        });
        let before = ch.buffer_sizes();
        for _ in 0..10 {
            ch.on_hit(
                SimTime::ZERO,
                mac(1),
                &Lure::new(
                    Ssid::new("X").unwrap(),
                    LureSource::Wigle,
                    LureLane::PopularityGhost,
                ),
            );
        }
        assert_eq!(ch.buffer_sizes(), before);
    }

    #[test]
    fn direct_probe_flow_matches_karma() {
        let mut ch = hunter(CityHunterConfig::default());
        let before = ch.database_len();
        let lures = ch.respond_to_probe(
            SimTime::ZERO,
            &ProbeRequest::direct(mac(3), Ssid::new("Disclosed").unwrap()),
            40,
        );
        assert_eq!(lures.len(), 1);
        assert_eq!(lures[0].lane, LureLane::DirectReply);
        assert_eq!(ch.database_len(), before + 1);
    }

    #[test]
    fn warm_restart_restores_the_checkpoint_cold_loses_everything() {
        let mut ch = hunter(CityHunterConfig::default());
        let boot_len = ch.database_len();
        // Harvest a few direct probes, then checkpoint.
        for i in 0..4u8 {
            let ssid = Ssid::new(format!("Harvested{i}")).unwrap();
            let _ = ch.respond_to_probe(
                SimTime::from_secs(10),
                &ProbeRequest::direct(mac(1), ssid),
                40,
            );
        }
        let _ = ch.respond_to_probe(SimTime::from_secs(11), &ProbeRequest::broadcast(mac(2)), 40);
        let at_checkpoint = ch.database_len();
        let tracked_at_checkpoint = ch.tracker().sent_count(mac(2));
        assert!(at_checkpoint > boot_len);
        ch.checkpoint(SimTime::from_secs(12));
        // Learn more after the checkpoint...
        let _ = ch.respond_to_probe(
            SimTime::from_secs(20),
            &ProbeRequest::direct(mac(1), Ssid::new("PostCheckpoint").unwrap()),
            40,
        );
        assert_eq!(ch.database_len(), at_checkpoint + 1);
        // ...a warm restart rolls back exactly to the checkpoint...
        ch.on_crash_restart(SimTime::from_secs(30), CrashMode::Warm);
        assert_eq!(ch.restarts(), 1);
        assert_eq!(ch.database_len(), at_checkpoint);
        assert_eq!(ch.tracker().sent_count(mac(2)), tracked_at_checkpoint);
        // ...and a cold restart falls all the way back to the seed state.
        ch.on_crash_restart(SimTime::from_secs(40), CrashMode::Cold);
        assert_eq!(ch.restarts(), 2);
        assert_eq!(ch.database_len(), boot_len);
        assert_eq!(ch.tracker().sent_count(mac(2)), 0);
    }

    #[test]
    fn warm_restart_without_checkpoint_degrades_to_cold() {
        let mut ch = hunter(CityHunterConfig::default());
        let boot_len = ch.database_len();
        let _ = ch.respond_to_probe(
            SimTime::from_secs(5),
            &ProbeRequest::direct(mac(1), Ssid::new("Lost").unwrap()),
            40,
        );
        ch.on_crash_restart(SimTime::from_secs(10), CrashMode::Warm);
        assert_eq!(ch.database_len(), boot_len);
    }

    #[test]
    fn snapshot_restore_round_trips_selection_behaviour() {
        // Two attackers with identical history: one crashes and restores
        // a checkpoint of the other's state; both must then offer the
        // same lures (the ghost-list and split state survive snapshots).
        let probe = ProbeRequest::broadcast(mac(1));
        let mut reference = hunter(CityHunterConfig::default());
        let mut crashed = hunter(CityHunterConfig::default());
        for t in 0..3u64 {
            let _ = reference.respond_to_probe(SimTime::from_secs(t), &probe, 40);
            let _ = crashed.respond_to_probe(SimTime::from_secs(t), &probe, 40);
        }
        let snap = reference.snapshot();
        crashed.restore(&snap);
        // Fresh clients (untouched RNG state differences only affect
        // ghost exploration; compare full offers for a tracked client).
        let a = reference.respond_to_probe(SimTime::from_secs(10), &probe, 40);
        let b = crashed.respond_to_probe(SimTime::from_secs(10), &probe, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn determinism_same_seed() {
        let mk = || {
            let mut ch = hunter(CityHunterConfig::default());
            let mut out = Vec::new();
            for i in 0..5u8 {
                out.push(ch.respond_to_probe(
                    SimTime::from_secs(i as u64),
                    &ProbeRequest::broadcast(mac(i)),
                    40,
                ));
            }
            out
        };
        assert_eq!(mk(), mk());
    }
}

//! The weighted SSID database (§IV-B).
//!
//! Every SSID the attacker knows, with a weight (initially rank-order from
//! the heat-ranked WiGLE seed, then bumped by online events), hit
//! statistics, and the freshness timestamp the FB runs on.
//!
//! The database owns a [`SsidInterner`] and keys everything by [`SsidId`]:
//! the ranking caches are `Vec<SsidId>` rebuilt in place (no per-call
//! clones — the old API returned `Vec<Ssid>` by clone on every freshness
//! query), and the buffers downstream dedup ids instead of comparing
//! strings. [`Ssid`] remains the validated boundary type: it enters via the
//! seed/observe calls and leaves via [`SsidDatabase::resolve`].

use ch_sim::DetHashMap;

use ch_sim::SimTime;
use ch_wifi::{Ssid, SsidId, SsidInterner};

use crate::api::LureSource;

/// Weight bump when an SSID scores a hit on a broadcast client.
pub const HIT_WEIGHT_BONUS: f64 = 25.0;

/// Initial weight of an SSID harvested from a direct probe: the paper adds
/// them to the live database; a mid-range weight lets genuinely popular
/// ones climb via hits without letting every one-off home SSID crowd the
/// popularity buffer.
pub const DIRECT_PROBE_WEIGHT: f64 = 30.0;

/// Weight bump when an already-known SSID is seen in another direct probe
/// (several clients carrying it is evidence of popularity).
pub const DIRECT_REPEAT_BONUS: f64 = 10.0;

/// One database record.
#[derive(Debug, Clone, PartialEq)]
pub struct DbEntry {
    /// Selection weight (popularity).
    pub weight: f64,
    /// Original provenance.
    pub source: LureSource,
    /// Broadcast-probe hits scored with this SSID.
    pub hits: u32,
    /// Most recent hit instant (freshness).
    pub last_hit: Option<SimTime>,
    /// When the SSID entered the database.
    pub added_at: SimTime,
}

/// The attacker's SSID database.
#[derive(Debug, Clone, Default)]
pub struct SsidDatabase {
    interner: SsidInterner,
    entries: DetHashMap<SsidId, DbEntry>,
    /// Cached weight-descending order; rebuilt lazily, in place.
    ranked: Vec<SsidId>,
    ranked_dirty: bool,
    /// Cached freshness order (most recent hit first); rebuilt lazily.
    fresh: Vec<SsidId>,
    fresh_dirty: bool,
    fresh_scratch: Vec<(SimTime, SsidId)>,
}

impl SsidDatabase {
    /// An empty database.
    pub fn new() -> Self {
        SsidDatabase::default()
    }

    /// Number of known SSIDs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is known yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The interner backing this database. Ids returned by any method here
    /// resolve against it.
    pub fn interner(&self) -> &SsidInterner {
        &self.interner
    }

    /// The id of `ssid`, if it is known.
    pub fn id_of(&self, ssid: &Ssid) -> Option<SsidId> {
        self.interner
            .get(ssid)
            .filter(|id| self.entries.contains_key(id))
    }

    /// Resolves a database id back to its SSID.
    pub fn resolve(&self, id: SsidId) -> &Ssid {
        self.interner.resolve(id)
    }

    /// The record for `ssid`.
    pub fn entry(&self, ssid: &Ssid) -> Option<&DbEntry> {
        self.interner.get(ssid).and_then(|id| self.entries.get(&id))
    }

    /// The record for an interned id.
    pub fn entry_by_id(&self, id: SsidId) -> Option<&DbEntry> {
        self.entries.get(&id)
    }

    /// The provenance of an interned id (hot-path lookup; never allocates).
    pub fn source_of(&self, id: SsidId) -> Option<LureSource> {
        self.entries.get(&id).map(|e| e.source)
    }

    /// `true` if `ssid` is known.
    pub fn contains(&self, ssid: &Ssid) -> bool {
        self.id_of(ssid).is_some()
    }

    /// Seeds an SSID from the WiGLE ranking with an explicit rank weight.
    /// Existing entries keep the larger weight.
    pub fn seed_from_wigle(&mut self, ssid: Ssid, weight: f64, now: SimTime) -> SsidId {
        self.ranked_dirty = true;
        let id = self.interner.intern(&ssid);
        self.entries
            .entry(id)
            .and_modify(|e| e.weight = e.weight.max(weight))
            .or_insert(DbEntry {
                weight,
                source: LureSource::Wigle,
                hits: 0,
                last_hit: None,
                added_at: now,
            });
        id
    }

    /// Preloads a carrier SSID (§V-B) at a given weight.
    pub fn seed_carrier(&mut self, ssid: Ssid, weight: f64, now: SimTime) -> SsidId {
        self.ranked_dirty = true;
        let id = self.interner.intern(&ssid);
        self.entries.entry(id).or_insert(DbEntry {
            weight,
            source: LureSource::Carrier,
            hits: 0,
            last_hit: None,
            added_at: now,
        });
        id
    }

    /// Records an SSID disclosed by a direct probe: new SSIDs join at
    /// [`DIRECT_PROBE_WEIGHT`]; repeats earn [`DIRECT_REPEAT_BONUS`].
    pub fn observe_direct_probe(&mut self, ssid: &Ssid, now: SimTime) -> SsidId {
        self.ranked_dirty = true;
        let id = self.interner.intern(ssid);
        self.entries
            .entry(id)
            .and_modify(|e| e.weight += DIRECT_REPEAT_BONUS)
            .or_insert(DbEntry {
                weight: DIRECT_PROBE_WEIGHT,
                source: LureSource::DirectProbe,
                hits: 0,
                last_hit: None,
                added_at: now,
            });
        id
    }

    /// Records a broadcast hit with `ssid`: weight bonus + freshness stamp.
    pub fn record_hit(&mut self, ssid: &Ssid, now: SimTime) {
        if let Some(id) = self.id_of(ssid) {
            self.record_hit_id(id, now);
        }
    }

    /// [`record_hit`](SsidDatabase::record_hit) by interned id.
    pub fn record_hit_id(&mut self, id: SsidId, now: SimTime) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.weight += HIT_WEIGHT_BONUS;
            e.hits += 1;
            e.last_hit = Some(now);
            self.ranked_dirty = true;
            self.fresh_dirty = true;
        }
    }

    /// SSID ids in weight-descending order (stable name tie-break). The
    /// order is cached between mutations and rebuilt in place — no
    /// allocation once the cache has reached the database size.
    pub fn ranked(&mut self) -> &[SsidId] {
        if self.ranked_dirty {
            let mut order = std::mem::take(&mut self.ranked);
            order.clear();
            order.extend(self.entries.keys().copied());
            let entries = &self.entries;
            let interner = &self.interner;
            // Unstable sort (in place, allocation-free); the (weight, name)
            // key is a total order over distinct names, so the result
            // matches the old stable sort byte for byte.
            order.sort_unstable_by(|a, b| {
                let wa = entries[a].weight;
                let wb = entries[b].weight;
                wb.total_cmp(&wa)
                    .then_with(|| interner.resolve(*a).cmp(interner.resolve(*b)))
            });
            self.ranked = order;
            self.ranked_dirty = false;
        }
        &self.ranked
    }

    /// SSID ids with at least one hit, most recent hit first — the
    /// freshness ranking behind the FB. Cached between hits (the old API
    /// cloned every SSID into a fresh `Vec<String>`-style list per call).
    pub fn by_freshness(&mut self) -> &[SsidId] {
        if self.fresh_dirty {
            let mut scratch = std::mem::take(&mut self.fresh_scratch);
            scratch.clear();
            scratch.extend(
                self.entries
                    .iter()
                    .filter_map(|(id, e)| e.last_hit.map(|t| (t, *id))),
            );
            let interner = &self.interner;
            scratch.sort_unstable_by(|a, b| {
                b.0.cmp(&a.0)
                    .then_with(|| interner.resolve(a.1).cmp(interner.resolve(b.1)))
            });
            self.fresh.clear();
            self.fresh.extend(scratch.iter().map(|&(_, id)| id));
            self.fresh_scratch = scratch;
            self.fresh_dirty = false;
        }
        &self.fresh
    }

    /// Both ranking caches at once, refreshed — the hot path needs the
    /// weight order and the freshness order simultaneously, and the borrow
    /// checker will not allow two sequential `&mut self` accessor calls to
    /// both stay live.
    pub fn ranked_and_fresh(&mut self) -> (&[SsidId], &[SsidId]) {
        let _ = self.ranked();
        let _ = self.by_freshness();
        (&self.ranked, &self.fresh)
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = (&Ssid, &DbEntry)> {
        self.entries
            .iter()
            .map(|(id, e)| (self.interner.resolve(*id), e))
    }

    /// Inserts one record verbatim — the checkpoint-restore path. Replaying
    /// a database export through this call in the interner's original id
    /// order (see [`SsidInterner::names`](ch_wifi::SsidInterner)) reproduces
    /// the same `SsidId` assignment, so exported id lists stay valid.
    pub fn restore_entry(&mut self, ssid: &Ssid, entry: DbEntry) -> SsidId {
        let id = self.interner.intern(ssid);
        self.entries.insert(id, entry);
        self.ranked_dirty = true;
        self.fresh_dirty = true;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssid(s: &str) -> Ssid {
        Ssid::new(s).unwrap()
    }

    #[test]
    fn wigle_seed_keeps_max_weight() {
        let mut db = SsidDatabase::new();
        let id = db.seed_from_wigle(ssid("A"), 200.0, SimTime::ZERO);
        assert_eq!(db.seed_from_wigle(ssid("A"), 50.0, SimTime::ZERO), id);
        assert_eq!(db.entry(&ssid("A")).unwrap().weight, 200.0);
        assert_eq!(db.len(), 1);
        assert_eq!(db.id_of(&ssid("A")), Some(id));
        assert_eq!(db.resolve(id), &ssid("A"));
    }

    #[test]
    fn direct_probe_repeats_accumulate() {
        let mut db = SsidDatabase::new();
        db.observe_direct_probe(&ssid("X"), SimTime::ZERO);
        let w0 = db.entry(&ssid("X")).unwrap().weight;
        db.observe_direct_probe(&ssid("X"), SimTime::from_secs(1));
        assert_eq!(
            db.entry(&ssid("X")).unwrap().weight,
            w0 + DIRECT_REPEAT_BONUS
        );
        assert_eq!(
            db.entry(&ssid("X")).unwrap().source,
            LureSource::DirectProbe
        );
    }

    #[test]
    fn hits_boost_weight_and_freshness() {
        let mut db = SsidDatabase::new();
        db.seed_from_wigle(ssid("A"), 10.0, SimTime::ZERO);
        db.record_hit(&ssid("A"), SimTime::from_secs(30));
        let e = db.entry(&ssid("A")).unwrap();
        assert_eq!(e.hits, 1);
        assert_eq!(e.last_hit, Some(SimTime::from_secs(30)));
        assert_eq!(e.weight, 10.0 + HIT_WEIGHT_BONUS);
        // Hitting an unknown SSID is a no-op.
        db.record_hit(&ssid("Nope"), SimTime::from_secs(31));
        assert!(!db.contains(&ssid("Nope")));
    }

    #[test]
    fn ranking_follows_weight_then_name() {
        let mut db = SsidDatabase::new();
        db.seed_from_wigle(ssid("Low"), 1.0, SimTime::ZERO);
        db.seed_from_wigle(ssid("B-High"), 9.0, SimTime::ZERO);
        db.seed_from_wigle(ssid("A-High"), 9.0, SimTime::ZERO);
        let order = db.ranked().to_vec();
        let ranked: Vec<&str> = order.iter().map(|&id| db.resolve(id).as_str()).collect();
        assert_eq!(ranked, ["A-High", "B-High", "Low"]);
    }

    #[test]
    fn ranking_cache_invalidated_by_updates() {
        let mut db = SsidDatabase::new();
        db.seed_from_wigle(ssid("A"), 5.0, SimTime::ZERO);
        db.seed_from_wigle(ssid("B"), 4.0, SimTime::ZERO);
        let head = db.ranked()[0];
        assert_eq!(db.resolve(head).as_str(), "A");
        db.record_hit(&ssid("B"), SimTime::from_secs(1)); // B now 29
        let head = db.ranked()[0];
        assert_eq!(db.resolve(head).as_str(), "B");
    }

    #[test]
    fn freshness_order_is_recency() {
        let mut db = SsidDatabase::new();
        for (name, t) in [("A", 10), ("B", 30), ("C", 20)] {
            db.seed_from_wigle(ssid(name), 1.0, SimTime::ZERO);
            db.record_hit(&ssid(name), SimTime::from_secs(t));
        }
        db.seed_from_wigle(ssid("NeverHit"), 99.0, SimTime::ZERO);
        let order = db.by_freshness().to_vec();
        let fresh: Vec<&str> = order.iter().map(|&id| db.resolve(id).as_str()).collect();
        assert_eq!(fresh, ["B", "C", "A"]);
    }

    #[test]
    fn freshness_cache_invalidated_by_hits() {
        let mut db = SsidDatabase::new();
        db.seed_from_wigle(ssid("A"), 1.0, SimTime::ZERO);
        db.seed_from_wigle(ssid("B"), 1.0, SimTime::ZERO);
        db.record_hit(&ssid("A"), SimTime::from_secs(1));
        assert_eq!(db.by_freshness().len(), 1);
        db.record_hit(&ssid("B"), SimTime::from_secs(2));
        let order = db.by_freshness().to_vec();
        let fresh: Vec<&str> = order.iter().map(|&id| db.resolve(id).as_str()).collect();
        assert_eq!(fresh, ["B", "A"]);
    }

    #[test]
    fn stale_interned_id_is_not_an_entry() {
        // An id can exist in the interner without a database record only if
        // callers misuse the type; id_of must still answer from `entries`.
        let mut db = SsidDatabase::new();
        let id = db.seed_from_wigle(ssid("A"), 1.0, SimTime::ZERO);
        assert_eq!(
            db.entry_by_id(id).map(|e| e.source),
            Some(LureSource::Wigle)
        );
        assert_eq!(db.source_of(id), Some(LureSource::Wigle));
    }

    #[test]
    fn empty_db() {
        let mut db = SsidDatabase::new();
        assert!(db.is_empty());
        assert!(db.ranked().is_empty());
        assert!(db.by_freshness().is_empty());
    }
}

//! The weighted SSID database (§IV-B).
//!
//! Every SSID the attacker knows, with a weight (initially rank-order from
//! the heat-ranked WiGLE seed, then bumped by online events), hit
//! statistics, and the freshness timestamp the FB runs on.

use ch_sim::DetHashMap;

use ch_sim::SimTime;
use ch_wifi::Ssid;

use crate::api::LureSource;

/// Weight bump when an SSID scores a hit on a broadcast client.
pub const HIT_WEIGHT_BONUS: f64 = 25.0;

/// Initial weight of an SSID harvested from a direct probe: the paper adds
/// them to the live database; a mid-range weight lets genuinely popular
/// ones climb via hits without letting every one-off home SSID crowd the
/// popularity buffer.
pub const DIRECT_PROBE_WEIGHT: f64 = 30.0;

/// Weight bump when an already-known SSID is seen in another direct probe
/// (several clients carrying it is evidence of popularity).
pub const DIRECT_REPEAT_BONUS: f64 = 10.0;

/// One database record.
#[derive(Debug, Clone, PartialEq)]
pub struct DbEntry {
    /// Selection weight (popularity).
    pub weight: f64,
    /// Original provenance.
    pub source: LureSource,
    /// Broadcast-probe hits scored with this SSID.
    pub hits: u32,
    /// Most recent hit instant (freshness).
    pub last_hit: Option<SimTime>,
    /// When the SSID entered the database.
    pub added_at: SimTime,
}

/// The attacker's SSID database.
#[derive(Debug, Clone, Default)]
pub struct SsidDatabase {
    entries: DetHashMap<Ssid, DbEntry>,
    /// Cached weight-descending order; rebuilt lazily.
    ranked: Vec<Ssid>,
    dirty: bool,
}

impl SsidDatabase {
    /// An empty database.
    pub fn new() -> Self {
        SsidDatabase::default()
    }

    /// Number of known SSIDs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is known yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The record for `ssid`.
    pub fn entry(&self, ssid: &Ssid) -> Option<&DbEntry> {
        self.entries.get(ssid)
    }

    /// `true` if `ssid` is known.
    pub fn contains(&self, ssid: &Ssid) -> bool {
        self.entries.contains_key(ssid)
    }

    /// Seeds an SSID from the WiGLE ranking with an explicit rank weight.
    /// Existing entries keep the larger weight.
    pub fn seed_from_wigle(&mut self, ssid: Ssid, weight: f64, now: SimTime) {
        self.dirty = true;
        self.entries
            .entry(ssid)
            .and_modify(|e| e.weight = e.weight.max(weight))
            .or_insert(DbEntry {
                weight,
                source: LureSource::Wigle,
                hits: 0,
                last_hit: None,
                added_at: now,
            });
    }

    /// Preloads a carrier SSID (§V-B) at a given weight.
    pub fn seed_carrier(&mut self, ssid: Ssid, weight: f64, now: SimTime) {
        self.dirty = true;
        self.entries.entry(ssid).or_insert(DbEntry {
            weight,
            source: LureSource::Carrier,
            hits: 0,
            last_hit: None,
            added_at: now,
        });
    }

    /// Records an SSID disclosed by a direct probe: new SSIDs join at
    /// [`DIRECT_PROBE_WEIGHT`]; repeats earn [`DIRECT_REPEAT_BONUS`].
    pub fn observe_direct_probe(&mut self, ssid: Ssid, now: SimTime) {
        self.dirty = true;
        self.entries
            .entry(ssid)
            .and_modify(|e| e.weight += DIRECT_REPEAT_BONUS)
            .or_insert(DbEntry {
                weight: DIRECT_PROBE_WEIGHT,
                source: LureSource::DirectProbe,
                hits: 0,
                last_hit: None,
                added_at: now,
            });
    }

    /// Records a broadcast hit with `ssid`: weight bonus + freshness stamp.
    pub fn record_hit(&mut self, ssid: &Ssid, now: SimTime) {
        if let Some(e) = self.entries.get_mut(ssid) {
            e.weight += HIT_WEIGHT_BONUS;
            e.hits += 1;
            e.last_hit = Some(now);
            self.dirty = true;
        }
    }

    /// SSIDs in weight-descending order (stable name tie-break). The order
    /// is cached between mutations.
    pub fn ranked(&mut self) -> &[Ssid] {
        if self.dirty {
            let mut order: Vec<Ssid> = self.entries.keys().cloned().collect();
            order.sort_by(|a, b| {
                let wa = self.entries[a].weight;
                let wb = self.entries[b].weight;
                wb.total_cmp(&wa).then_with(|| a.cmp(b))
            });
            self.ranked = order;
            self.dirty = false;
        }
        &self.ranked
    }

    /// SSIDs with at least one hit, most recent hit first — the freshness
    /// ranking behind the FB.
    pub fn by_freshness(&self) -> Vec<Ssid> {
        let mut hit: Vec<(&Ssid, SimTime)> = self
            .entries
            .iter()
            .filter_map(|(s, e)| e.last_hit.map(|t| (s, t)))
            .collect();
        hit.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        hit.into_iter().map(|(s, _)| s.clone()).collect()
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = (&Ssid, &DbEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssid(s: &str) -> Ssid {
        Ssid::new(s).unwrap()
    }

    #[test]
    fn wigle_seed_keeps_max_weight() {
        let mut db = SsidDatabase::new();
        db.seed_from_wigle(ssid("A"), 200.0, SimTime::ZERO);
        db.seed_from_wigle(ssid("A"), 50.0, SimTime::ZERO);
        assert_eq!(db.entry(&ssid("A")).unwrap().weight, 200.0);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn direct_probe_repeats_accumulate() {
        let mut db = SsidDatabase::new();
        db.observe_direct_probe(ssid("X"), SimTime::ZERO);
        let w0 = db.entry(&ssid("X")).unwrap().weight;
        db.observe_direct_probe(ssid("X"), SimTime::from_secs(1));
        assert_eq!(
            db.entry(&ssid("X")).unwrap().weight,
            w0 + DIRECT_REPEAT_BONUS
        );
        assert_eq!(
            db.entry(&ssid("X")).unwrap().source,
            LureSource::DirectProbe
        );
    }

    #[test]
    fn hits_boost_weight_and_freshness() {
        let mut db = SsidDatabase::new();
        db.seed_from_wigle(ssid("A"), 10.0, SimTime::ZERO);
        db.record_hit(&ssid("A"), SimTime::from_secs(30));
        let e = db.entry(&ssid("A")).unwrap();
        assert_eq!(e.hits, 1);
        assert_eq!(e.last_hit, Some(SimTime::from_secs(30)));
        assert_eq!(e.weight, 10.0 + HIT_WEIGHT_BONUS);
        // Hitting an unknown SSID is a no-op.
        db.record_hit(&ssid("Nope"), SimTime::from_secs(31));
        assert!(!db.contains(&ssid("Nope")));
    }

    #[test]
    fn ranking_follows_weight_then_name() {
        let mut db = SsidDatabase::new();
        db.seed_from_wigle(ssid("Low"), 1.0, SimTime::ZERO);
        db.seed_from_wigle(ssid("B-High"), 9.0, SimTime::ZERO);
        db.seed_from_wigle(ssid("A-High"), 9.0, SimTime::ZERO);
        let ranked: Vec<&str> = db.ranked().iter().map(|s| s.as_str()).collect();
        assert_eq!(ranked, ["A-High", "B-High", "Low"]);
    }

    #[test]
    fn ranking_cache_invalidated_by_updates() {
        let mut db = SsidDatabase::new();
        db.seed_from_wigle(ssid("A"), 5.0, SimTime::ZERO);
        db.seed_from_wigle(ssid("B"), 4.0, SimTime::ZERO);
        assert_eq!(db.ranked()[0].as_str(), "A");
        db.record_hit(&ssid("B"), SimTime::from_secs(1)); // B now 29
        assert_eq!(db.ranked()[0].as_str(), "B");
    }

    #[test]
    fn freshness_order_is_recency() {
        let mut db = SsidDatabase::new();
        for (name, t) in [("A", 10), ("B", 30), ("C", 20)] {
            db.seed_from_wigle(ssid(name), 1.0, SimTime::ZERO);
            db.record_hit(&ssid(name), SimTime::from_secs(t));
        }
        db.seed_from_wigle(ssid("NeverHit"), 99.0, SimTime::ZERO);
        let fresh: Vec<String> = db
            .by_freshness()
            .iter()
            .map(|s| s.as_str().to_owned())
            .collect();
        assert_eq!(fresh, ["B", "C", "A"]);
    }

    #[test]
    fn empty_db() {
        let mut db = SsidDatabase::new();
        assert!(db.is_empty());
        assert!(db.ranked().is_empty());
        assert!(db.by_freshness().is_empty());
    }
}

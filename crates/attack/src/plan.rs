//! Build-once attack-site plan: the WiGLE/heat derivations every
//! attacker constructor needs, precomputed so a campaign pays for them
//! once per venue instead of once per job.
//!
//! [`AttackSitePlan::build`] runs the three offline scans —
//! heat-ranked city SSIDs, site-nearest open SSIDs, and city-wide
//! AP-count ranking — and snapshots their results (with the rank
//! weights already attached) as plain `(Ssid, weight)` lists. The
//! plan-based constructors ([`crate::CityHunter::from_plan`],
//! [`crate::PrelimCityHunter::from_plan`],
//! [`crate::AttackerSpec::build_from_plan`]) seed their databases from
//! those lists in exactly the insertion order the scan-based
//! constructors use, so interned [`ch_wifi::SsidId`]s — and therefore
//! every downstream draw — are bit-identical either way.

use ch_geo::weights::{rank_weights, RankWeighting};
use ch_geo::{GeoPoint, HeatMap, WigleSnapshot};
use ch_wifi::Ssid;

use crate::prelim::{WIGLE_NEARBY, WIGLE_TOP_BY_HEAT};

/// Precomputed WiGLE seed lists for one deployment site.
///
/// Because each ranking is a total order (ties broken by SSID), every
/// prefix of these lists equals the same scan run with a smaller `n`:
/// `nearby_open[..1]` is the beacon-clone target, `nearby_open[..6]`
/// the detector's legitimate-AP neighbourhood.
#[derive(Debug, Clone)]
pub struct AttackSitePlan {
    /// Top [`WIGLE_TOP_BY_HEAT`] city SSIDs by heat, with their linear
    /// rank weights (the §IV-B seed).
    pub by_heat: Vec<(Ssid, f64)>,
    /// The [`WIGLE_NEARBY`] open SSIDs nearest the site, nearest first,
    /// with their linear rank weights (the §III-B local seed).
    pub nearby_open: Vec<(Ssid, f64)>,
    /// Top [`WIGLE_TOP_BY_HEAT`] open SSIDs by raw AP count (the §III
    /// city-wide seed; the preliminary attacker ignores weights).
    pub by_ap_count: Vec<Ssid>,
}

impl AttackSitePlan {
    /// Runs the offline scans once for a deployment at `site`.
    pub fn build(wigle: &WigleSnapshot, heat: &HeatMap, site: GeoPoint) -> Self {
        let top = wigle.top_by_heat(heat, WIGLE_TOP_BY_HEAT);
        let weights = rank_weights(top.len(), RankWeighting::Linear);
        let by_heat = top
            .into_iter()
            .zip(weights)
            .map(|((ssid, _), w)| (ssid, w))
            .collect();
        let nearby = wigle.nearest_open_ssids(site, WIGLE_NEARBY);
        let weights = rank_weights(nearby.len(), RankWeighting::Linear);
        let nearby_open = nearby.into_iter().zip(weights).collect();
        let by_ap_count = wigle
            .top_by_ap_count(WIGLE_TOP_BY_HEAT, true)
            .into_iter()
            .map(|(ssid, _count)| ssid)
            .collect();
        AttackSitePlan {
            by_heat,
            nearby_open,
            by_ap_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_geo::{CityModel, PhotoCollection};
    use ch_sim::SimRng;

    #[test]
    fn plan_prefixes_match_smaller_scans() {
        let mut rng = SimRng::seed_from(20);
        let city = CityModel::synthesize(&mut rng);
        let wigle = WigleSnapshot::synthesize(&city, &mut rng);
        let photos = PhotoCollection::synthesize(&city, 20_000, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 100.0);
        let site = city.pois()[10].location;
        let plan = AttackSitePlan::build(&wigle, &heat, site);

        assert_eq!(plan.by_heat.len(), WIGLE_TOP_BY_HEAT);
        assert_eq!(plan.nearby_open.len(), WIGLE_NEARBY);
        assert_eq!(plan.by_ap_count.len(), WIGLE_TOP_BY_HEAT);

        // Prefix property: the head of the precomputed list is exactly
        // what a direct smaller scan returns (the clone-target and
        // detector constructors rely on this).
        let direct: Vec<Ssid> = wigle.nearest_open_ssids(site, 6);
        let prefix: Vec<Ssid> = plan
            .nearby_open
            .iter()
            .take(6)
            // ch-lint: allow(ssid-clone) — test-side comparison copy.
            .map(|(ssid, _)| ssid.clone())
            .collect();
        assert_eq!(prefix, direct);
    }
}

//! The KARMA attacker (Dai Zovi & Macaulay 2005).

use ch_sim::{CrashMode, SimTime};
use ch_wifi::mgmt::ProbeRequest;
use ch_wifi::{MacAddr, Ssid};

use crate::api::{direct_reply_into, Attacker, Lure};

/// KARMA: mimic whatever SSID a *direct* probe asks for; stay silent on
/// broadcast probes. Against a modern, broadcast-only population its
/// broadcast hit rate is zero by construction (Table I).
#[derive(Debug, Clone)]
pub struct KarmaAttacker {
    bssid: MacAddr,
    ssids_mimicked: Vec<Ssid>,
}

impl KarmaAttacker {
    /// Creates a KARMA attacker transmitting as `bssid`.
    pub fn new(bssid: MacAddr) -> Self {
        KarmaAttacker {
            bssid,
            ssids_mimicked: Vec::new(),
        }
    }

    /// Distinct SSIDs mimicked so far (diagnostics).
    pub fn mimic_count(&self) -> usize {
        self.ssids_mimicked.len()
    }

    /// The mimic log, in first-seen order (checkpoint export).
    pub fn mimicked(&self) -> &[Ssid] {
        &self.ssids_mimicked
    }

    /// Overwrites the mimic log from a checkpoint, preserving order.
    pub fn restore_mimicked(&mut self, ssids: Vec<Ssid>) {
        self.ssids_mimicked = ssids;
    }
}

impl Attacker for KarmaAttacker {
    fn name(&self) -> &'static str {
        "KARMA"
    }

    fn bssid(&self) -> MacAddr {
        self.bssid
    }

    fn respond_to_probe_into(
        &mut self,
        _now: SimTime,
        probe: &ProbeRequest,
        _budget: usize,
        out: &mut Vec<Lure>,
    ) {
        if probe.is_broadcast() {
            // KARMA has nothing to say to a broadcast probe.
            out.clear();
        } else {
            if !self.ssids_mimicked.contains(&probe.ssid) {
                // Arc refcount bump into the mimic log, off the hot path.
                // ch-lint: allow(ssid-clone, hot-path-alloc)
                self.ssids_mimicked.push(probe.ssid.clone());
            }
            direct_reply_into(probe, out);
        }
    }

    fn on_hit(&mut self, _now: SimTime, _client: MacAddr, _lure: &Lure) {}

    fn database_len(&self) -> usize {
        // KARMA keeps no database; report the mimic log for the curve.
        self.ssids_mimicked.len()
    }

    fn on_crash_restart(&mut self, _now: SimTime, _mode: CrashMode) {
        // KARMA is stateless as an attacker; only the diagnostic mimic
        // log dies with the process.
        self.ssids_mimicked.clear();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    #[test]
    fn silent_on_broadcast() {
        let mut karma = KarmaAttacker::new(mac(9));
        let probe = ProbeRequest::broadcast(mac(1));
        assert!(karma.respond_to_probe(SimTime::ZERO, &probe, 40).is_empty());
        assert_eq!(karma.database_len(), 0);
    }

    #[test]
    fn mimics_direct_probes() {
        let mut karma = KarmaAttacker::new(mac(9));
        let probe = ProbeRequest::direct(mac(1), Ssid::new("AP123").unwrap());
        let lures = karma.respond_to_probe(SimTime::ZERO, &probe, 40);
        assert_eq!(lures.len(), 1);
        assert_eq!(lures[0].ssid.as_str(), "AP123");
        // Repeats don't double-count the mimic log.
        karma.respond_to_probe(SimTime::ZERO, &probe, 40);
        assert_eq!(karma.mimic_count(), 1);
        assert_eq!(karma.name(), "KARMA");
        assert_eq!(karma.bssid(), mac(9));
        assert!(!karma.deauth_enabled());
    }
}

//! The preliminary City-Hunter (§III): MANA + two fixes.

use ch_arc::EpochSet;
use ch_geo::{GeoPoint, HeatMap, WigleSnapshot};
use ch_sim::SimTime;
use ch_wifi::mgmt::ProbeRequest;
use ch_wifi::{MacAddr, SsidId};

use crate::api::{direct_reply_into, Attacker, Lure, LureLane, LureSource};
use crate::clienttrack::ClientTracker;
use crate::db::SsidDatabase;
use crate::plan::AttackSitePlan;

/// How many heat-ranked city SSIDs seed the §IV database (the §III version
/// selects the same number but by raw AP count — the heat map is a §IV-B
/// refinement).
pub const WIGLE_TOP_BY_HEAT: usize = 200;

/// How many SSIDs nearest the attack site seed the database (§III-B).
pub const WIGLE_NEARBY: usize = 100;

/// §III City-Hunter: a WiGLE-seeded database with per-client untried
/// tracking, but **no weighting, no freshness and no adaptive selection**
/// — SSIDs are replayed in plain database order (the nearby seed first,
/// then the city-wide-by-AP-count seed, then whatever direct probes
/// harvest). The §IV design's whole point is that *which 40 go first*
/// matters; this version is the control that shows it (Tables II/III).
#[derive(Debug, Clone)]
pub struct PrelimCityHunter {
    bssid: MacAddr,
    db: SsidDatabase,
    /// Reply order: database insertion order, as §III describes it.
    reply_order: Vec<SsidId>,
    tracker: ClientTracker,
    /// Reused dedup scratch for the broadcast path.
    seen: EpochSet,
    /// Reused pick buffer for the broadcast path.
    picked: Vec<SsidId>,
}

impl PrelimCityHunter {
    /// Builds the attacker and initializes its database from the WiGLE
    /// snapshot: the 100 open SSIDs nearest `site`, then the top 200 open
    /// SSIDs by city-wide AP count (§III-B's two criteria).
    ///
    /// The heat map is accepted for interface parity with
    /// [`crate::CityHunter`] but its ranking is deliberately ignored:
    /// heat ranking is the §IV-B refinement this version predates.
    pub fn new(bssid: MacAddr, wigle: &WigleSnapshot, heat: &HeatMap, site: GeoPoint) -> Self {
        Self::from_plan(bssid, &AttackSitePlan::build(wigle, heat, site))
    }

    /// [`PrelimCityHunter::new`] from a precomputed [`AttackSitePlan`]:
    /// same seed lists, same insertion order, so the interned reply
    /// order is bit-identical to the scan-based constructor's.
    pub fn from_plan(bssid: MacAddr, plan: &AttackSitePlan) -> Self {
        let mut db = SsidDatabase::new();
        let mut reply_order = Vec::new();
        let push = |db: &mut SsidDatabase, order: &mut Vec<SsidId>, ssid: ch_wifi::Ssid| {
            if !db.contains(&ssid) {
                let id = db.seed_from_wigle(ssid, 1.0, SimTime::ZERO);
                order.push(id);
            }
        };
        for (ssid, _w) in &plan.nearby_open {
            // ch-lint: allow(ssid-clone) — construction-time refcount bump.
            push(&mut db, &mut reply_order, ssid.clone());
        }
        for ssid in &plan.by_ap_count {
            // ch-lint: allow(ssid-clone) — construction-time refcount bump.
            push(&mut db, &mut reply_order, ssid.clone());
        }
        PrelimCityHunter {
            bssid,
            db,
            reply_order,
            tracker: ClientTracker::new(),
            seen: EpochSet::new(),
            picked: Vec::new(),
        }
    }

    /// Read access to the database.
    pub fn database(&self) -> &SsidDatabase {
        &self.db
    }

    /// Read access to the per-client tracker (Fig. 2 analysis).
    pub fn tracker(&self) -> &ClientTracker {
        &self.tracker
    }

    /// The fixed reply order as interned ids (diagnostics/tests); resolve
    /// them through [`Self::database`]'s interner.
    pub fn reply_order(&self) -> &[SsidId] {
        &self.reply_order
    }

    /// Overwrites the in-run state from a checkpoint: the database, the
    /// reply order (ids valid against the restored database's interner)
    /// and the per-client tracker. The scratch buffers are run-local and
    /// carry no state across probes.
    pub fn restore_state(
        &mut self,
        db: SsidDatabase,
        reply_order: Vec<SsidId>,
        tracker: ClientTracker,
    ) {
        self.db = db;
        self.reply_order = reply_order;
        self.tracker = tracker;
    }
}

impl Attacker for PrelimCityHunter {
    fn name(&self) -> &'static str {
        "City-Hunter (preliminary)"
    }

    fn bssid(&self) -> MacAddr {
        self.bssid
    }

    fn respond_to_probe_into(
        &mut self,
        now: SimTime,
        probe: &ProbeRequest,
        budget: usize,
        out: &mut Vec<Lure>,
    ) {
        if probe.is_broadcast() {
            out.clear();
            self.tracker.select_untried_into(
                probe.source,
                &self.reply_order,
                budget,
                &mut self.seen,
                &mut self.picked,
            );
            for &id in &self.picked {
                let source = self.db.source_of(id).unwrap_or(LureSource::Wigle);
                self.tracker.mark_sent(probe.source, id);
                out.push(Lure::new(
                    // ch-lint: allow(hot-path-alloc) — Arc refcount bump.
                    self.db.resolve(id).clone(),
                    source,
                    LureLane::Database,
                ));
            }
        } else {
            let known = self.db.contains(&probe.ssid);
            let id = self.db.observe_direct_probe(&probe.ssid, now);
            if !known {
                self.reply_order.push(id);
            }
            direct_reply_into(probe, out);
        }
    }

    fn on_hit(&mut self, now: SimTime, _client: MacAddr, lure: &Lure) {
        self.db.record_hit(&lure.ssid, now);
    }

    fn database_len(&self) -> usize {
        self.db.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_geo::{CityModel, PhotoCollection};
    use ch_sim::SimRng;
    use ch_wifi::Ssid;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    fn setup() -> PrelimCityHunter {
        let mut rng = SimRng::seed_from(20);
        let city = CityModel::synthesize(&mut rng);
        let wigle = WigleSnapshot::synthesize(&city, &mut rng);
        let photos = PhotoCollection::synthesize(&city, 20_000, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, 100.0);
        let site = city.pois()[10].location;
        PrelimCityHunter::new(mac(9), &wigle, &heat, site)
    }

    #[test]
    fn database_seeded_before_deployment() {
        let ch = setup();
        // Nearest-100 ∪ top-200-by-count, with overlap: between 200 and 300.
        assert!(ch.database_len() >= WIGLE_TOP_BY_HEAT);
        assert!(ch.database_len() <= WIGLE_TOP_BY_HEAT + WIGLE_NEARBY);
        assert_eq!(ch.reply_order().len(), ch.database_len());
    }

    #[test]
    fn broadcast_reply_follows_database_order() {
        let mut ch = setup();
        let order = ch.reply_order().to_vec();
        let probe = ProbeRequest::broadcast(mac(1));
        let lures = ch.respond_to_probe(SimTime::ZERO, &probe, 40);
        assert_eq!(lures.len(), 40);
        assert!(lures.iter().all(|l| l.source == LureSource::Wigle));
        // §III has no weighting: the reply is the database head verbatim.
        for (lure, &expect) in lures.iter().zip(&order) {
            assert_eq!(&lure.ssid, ch.database().resolve(expect));
        }
    }

    #[test]
    fn successive_scans_advance_through_database() {
        // The §III-A fix: a static client eventually sees SSIDs deep in
        // the database instead of the same head 40.
        let mut ch = setup();
        let probe = ProbeRequest::broadcast(mac(1));
        let first = ch.respond_to_probe(SimTime::ZERO, &probe, 40);
        let second = ch.respond_to_probe(SimTime::from_secs(60), &probe, 40);
        assert_eq!(second.len(), 40);
        for lure in &second {
            assert!(
                !first.contains(lure),
                "{} was re-sent to the same client",
                lure.ssid
            );
        }
        assert_eq!(ch.tracker().sent_count(mac(1)), 80);
    }

    #[test]
    fn database_exhaustion_yields_fewer_lures() {
        let mut ch = setup();
        let probe = ProbeRequest::broadcast(mac(1));
        let db_size = ch.database_len();
        let mut total = 0;
        for round in 0..((db_size / 40) + 2) {
            let lures = ch.respond_to_probe(SimTime::from_secs(round as u64 * 60), &probe, 40);
            total += lures.len();
        }
        assert_eq!(total, db_size, "every SSID tried exactly once");
    }

    #[test]
    fn direct_probes_harvested_and_offered_to_others() {
        let mut ch = setup();
        let secret = Ssid::new("EstateNet-77").unwrap();
        let before = ch.database_len();
        ch.respond_to_probe(
            SimTime::ZERO,
            &ProbeRequest::direct(mac(2), secret.clone()),
            40,
        );
        assert_eq!(ch.database_len(), before + 1);
        // Harvested SSIDs join the tail of the reply order.
        let last = *ch.reply_order().last().unwrap();
        assert_eq!(ch.database().resolve(last), &secret);
        // A static broadcast client eventually receives it.
        let probe = ProbeRequest::broadcast(mac(3));
        let mut offered = false;
        for round in 0..20 {
            let lures = ch.respond_to_probe(SimTime::from_secs(round * 60), &probe, 40);
            if lures.iter().any(|l| l.ssid == secret) {
                offered = true;
                assert!(lures
                    .iter()
                    .find(|l| l.ssid == secret)
                    .is_some_and(|l| l.source == LureSource::DirectProbe));
                break;
            }
            if lures.is_empty() {
                break;
            }
        }
        assert!(offered, "harvested SSID never offered");
    }

    #[test]
    fn hits_recorded_but_do_not_reorder() {
        let mut ch = setup();
        let order_before = ch.reply_order().to_vec();
        let probe = ProbeRequest::broadcast(mac(1));
        let lures = ch.respond_to_probe(SimTime::ZERO, &probe, 40);
        let target = lures[39].clone();
        ch.on_hit(SimTime::from_secs(1), mac(1), &target);
        assert_eq!(ch.db.entry(&target.ssid).unwrap().hits, 1);
        // §III has no popularity feedback: the reply order is unchanged.
        assert_eq!(ch.reply_order(), order_before);
    }
}

//! §V-B extensions: deauthentication forcing and carrier preloading.
//!
//! *Deauthentication*: a client already associated to a legitimate AP
//! "barely sends out the probe request frames"; spoofing a deauth (Bellardo
//! & Savage 2003) disconnects it and forces a fresh scan that the attacker
//! can answer. [`DeauthScheduler`] rate-limits the spoofed frames per
//! victim so the attack stays plausible (and cheap in airtime).
//!
//! *Carrier preloading* is a database concern and lives in
//! [`crate::db::SsidDatabase::seed_carrier`] /
//! [`crate::cityhunter::CityHunterConfig::carrier_preload`].

use ch_sim::DetHashMap;

use ch_sim::{SimDuration, SimTime};
use ch_wifi::mgmt::{Deauthentication, ReasonCode};
use ch_wifi::MacAddr;

/// Rate-limited deauthentication frame scheduler.
#[derive(Debug, Clone)]
pub struct DeauthScheduler {
    /// Minimum spacing between deauths aimed at the same victim.
    cooldown: SimDuration,
    last_sent: DetHashMap<MacAddr, SimTime>,
    frames_sent: u64,
}

impl DeauthScheduler {
    /// Creates a scheduler with the given per-victim cooldown.
    pub fn new(cooldown: SimDuration) -> Self {
        DeauthScheduler {
            cooldown,
            last_sent: ch_sim::det_hash_map(),
            frames_sent: 0,
        }
    }

    /// The paper-plausible default: re-deauth a sticky client at most
    /// every 30 s.
    pub fn default_30s() -> Self {
        DeauthScheduler::new(SimDuration::from_secs(30))
    }

    /// Total spoofed frames emitted.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Requests a deauth of `victim` (connected to `real_ap`) at `now`.
    /// Returns the spoofed frame, or `None` if the victim is still in
    /// cooldown.
    pub fn try_deauth(
        &mut self,
        now: SimTime,
        victim: MacAddr,
        real_ap: MacAddr,
    ) -> Option<Deauthentication> {
        match self.last_sent.get(&victim) {
            Some(&last) if now.saturating_since(last) < self.cooldown => None,
            _ => {
                self.last_sent.insert(victim, now);
                self.frames_sent += 1;
                Some(Deauthentication {
                    // Spoofed: the frame claims to come from the victim's AP.
                    source: real_ap,
                    destination: victim,
                    reason: ReasonCode::PrevAuthExpired,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    #[test]
    fn spoofs_the_real_ap() {
        let mut d = DeauthScheduler::default_30s();
        let frame = d.try_deauth(SimTime::ZERO, mac(1), mac(7)).unwrap();
        assert_eq!(frame.source, mac(7));
        assert_eq!(frame.destination, mac(1));
        assert_eq!(frame.reason, ReasonCode::PrevAuthExpired);
        assert_eq!(d.frames_sent(), 1);
    }

    #[test]
    fn cooldown_enforced_per_victim() {
        let mut d = DeauthScheduler::new(SimDuration::from_secs(30));
        assert!(d.try_deauth(SimTime::ZERO, mac(1), mac(7)).is_some());
        assert!(d
            .try_deauth(SimTime::from_secs(10), mac(1), mac(7))
            .is_none());
        // A different victim is unaffected.
        assert!(d
            .try_deauth(SimTime::from_secs(10), mac(2), mac(7))
            .is_some());
        // After the cooldown, the first victim can be hit again.
        assert!(d
            .try_deauth(SimTime::from_secs(31), mac(1), mac(7))
            .is_some());
        assert_eq!(d.frames_sent(), 3);
    }
}

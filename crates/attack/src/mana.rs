//! The MANA attacker (DEF CON 22), §II–§III flaws included.

use ch_sim::{CrashMode, SimTime};
use ch_wifi::mgmt::ProbeRequest;
use ch_wifi::{MacAddr, SsidId};

use crate::api::{direct_reply_into, Attacker, Lure, LureLane, LureSource};
use crate::db::SsidDatabase;

/// MANA: harvest SSIDs from direct probes into a database; on a broadcast
/// probe, replay the database.
///
/// The two §III deficiencies are modelled deliberately, because Table I /
/// Fig. 1 quantify them:
///
/// 1. the database starts **empty** (no offline seed) and grows only as
///    fast as legacy devices happen to walk past;
/// 2. the reply always starts from the **top of the database** with no
///    per-client memory, so a client only ever sees the first
///    `budget` (~40) SSIDs no matter how many times it scans.
///
/// The real `hostapd-mana` has two modes; both are modelled:
///
/// * **loud** (the paper's deployment): broadcast probes are answered with
///   SSIDs harvested from *all* devices;
/// * **non-loud** (the tool's default): each device is only offered SSIDs
///   it disclosed *itself* — useless against broadcast-only clients, which
///   is exactly why the paper evaluates loud mode.
#[derive(Debug, Clone)]
pub struct ManaAttacker {
    bssid: MacAddr,
    db: SsidDatabase,
    /// Insertion-ordered id list — MANA replays in harvest order. Ids
    /// resolve against the database's interner.
    harvest_order: Vec<SsidId>,
    /// Per-device disclosures, for non-loud mode.
    per_device: ch_sim::DetHashMap<MacAddr, Vec<SsidId>>,
    loud: bool,
}

impl ManaAttacker {
    /// Creates a loud-mode MANA attacker (the paper's configuration).
    pub fn new(bssid: MacAddr) -> Self {
        ManaAttacker {
            bssid,
            db: SsidDatabase::new(),
            harvest_order: Vec::new(),
            per_device: ch_sim::det_hash_map(),
            loud: true,
        }
    }

    /// Creates a non-loud MANA: broadcast probes are answered only with
    /// SSIDs the *same* device disclosed earlier.
    pub fn new_non_loud(bssid: MacAddr) -> Self {
        ManaAttacker {
            loud: false,
            ..ManaAttacker::new(bssid)
        }
    }

    /// `true` in loud mode.
    pub fn is_loud(&self) -> bool {
        self.loud
    }

    /// Read access to the database (Fig. 1 analysis).
    pub fn database(&self) -> &SsidDatabase {
        &self.db
    }

    /// The harvest-order id list (checkpoint export).
    pub fn harvest_order(&self) -> &[SsidId] {
        &self.harvest_order
    }

    /// Per-device disclosures sorted by client MAC (checkpoint export;
    /// sorted so the serialized form never depends on hash-map layout).
    pub fn per_device_sorted(&self) -> Vec<(MacAddr, Vec<SsidId>)> {
        let mut entries: Vec<(MacAddr, Vec<SsidId>)> = self
            .per_device
            .iter()
            .map(|(mac, ids)| (*mac, ids.clone()))
            .collect();
        entries.sort_by_key(|(mac, _)| mac.octets());
        entries
    }

    /// Overwrites the in-run harvest state from a checkpoint. The database
    /// must already have been restored (the id lists resolve against its
    /// interner).
    pub fn restore_state(
        &mut self,
        db: SsidDatabase,
        harvest_order: Vec<SsidId>,
        per_device: Vec<(MacAddr, Vec<SsidId>)>,
    ) {
        self.db = db;
        self.harvest_order = harvest_order;
        self.per_device.clear();
        for (mac, ids) in per_device {
            self.per_device.insert(mac, ids);
        }
    }
}

impl Attacker for ManaAttacker {
    fn name(&self) -> &'static str {
        "MANA"
    }

    fn bssid(&self) -> MacAddr {
        self.bssid
    }

    fn respond_to_probe_into(
        &mut self,
        now: SimTime,
        probe: &ProbeRequest,
        budget: usize,
        out: &mut Vec<Lure>,
    ) {
        if probe.is_broadcast() {
            out.clear();
            let replay = if self.loud {
                // Replay the database from the top; only the first
                // `budget` can land (§III-A).
                self.harvest_order.as_slice()
            } else {
                // Non-loud: only this device's own disclosures.
                self.per_device
                    .get(&probe.source)
                    .map_or(&[][..], Vec::as_slice)
            };
            for &id in replay.iter().take(budget) {
                out.push(Lure::new(
                    // ch-lint: allow(hot-path-alloc) — Arc refcount bump.
                    self.db.resolve(id).clone(),
                    LureSource::DirectProbe,
                    LureLane::Database,
                ));
            }
        } else {
            let known = self.db.contains(&probe.ssid);
            let id = self.db.observe_direct_probe(&probe.ssid, now);
            if !known {
                self.harvest_order.push(id);
            }
            let disclosed = self.per_device.entry(probe.source).or_default();
            if !disclosed.contains(&id) {
                disclosed.push(id);
            }
            direct_reply_into(probe, out);
        }
    }

    fn on_hit(&mut self, now: SimTime, _client: MacAddr, lure: &Lure) {
        self.db.record_hit(&lure.ssid, now);
    }

    fn database_len(&self) -> usize {
        self.db.len()
    }

    fn on_crash_restart(&mut self, _now: SimTime, _mode: CrashMode) {
        // hostapd-mana keeps its harvest in process memory only — there
        // is no checkpoint to restore, so every restart is a cold start
        // whatever recovery mode the fault plan asked for.
        self.db = SsidDatabase::new();
        self.harvest_order.clear();
        self.per_device.clear();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_wifi::Ssid;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    fn ssid(s: &str) -> Ssid {
        Ssid::new(s).unwrap()
    }

    #[test]
    fn database_starts_empty() {
        let mut mana = ManaAttacker::new(mac(9));
        let broadcast = ProbeRequest::broadcast(mac(1));
        assert!(mana
            .respond_to_probe(SimTime::ZERO, &broadcast, 40)
            .is_empty());
        assert_eq!(mana.database_len(), 0);
    }

    #[test]
    fn harvests_then_replays_in_order() {
        let mut mana = ManaAttacker::new(mac(9));
        for (i, name) in ["A", "B", "C"].iter().enumerate() {
            let probe = ProbeRequest::direct(mac(i as u8 + 1), ssid(name));
            mana.respond_to_probe(SimTime::from_secs(i as u64), &probe, 40);
        }
        assert_eq!(mana.database_len(), 3);
        let lures =
            mana.respond_to_probe(SimTime::from_secs(10), &ProbeRequest::broadcast(mac(5)), 40);
        let names: Vec<&str> = lures.iter().map(|l| l.ssid.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
        assert!(lures.iter().all(|l| l.lane == LureLane::Database));
    }

    #[test]
    fn replay_is_capped_and_identical_every_scan() {
        // The §III-A pathology: a big database doesn't help because every
        // scan sees the same head.
        let mut mana = ManaAttacker::new(mac(9));
        for i in 0..100u32 {
            let probe = ProbeRequest::direct(mac((i % 200) as u8), ssid(&format!("S{i:03}")));
            mana.respond_to_probe(SimTime::ZERO, &probe, 40);
        }
        assert_eq!(mana.database_len(), 100);
        let first =
            mana.respond_to_probe(SimTime::from_secs(1), &ProbeRequest::broadcast(mac(1)), 40);
        let second =
            mana.respond_to_probe(SimTime::from_secs(60), &ProbeRequest::broadcast(mac(1)), 40);
        assert_eq!(first.len(), 40);
        assert_eq!(first, second, "same head replayed to the same client");
    }

    #[test]
    fn duplicate_direct_probes_not_duplicated() {
        let mut mana = ManaAttacker::new(mac(9));
        let probe = ProbeRequest::direct(mac(1), ssid("Dup"));
        mana.respond_to_probe(SimTime::ZERO, &probe, 40);
        mana.respond_to_probe(SimTime::from_secs(1), &probe, 40);
        assert_eq!(mana.database_len(), 1);
        assert_eq!(mana.harvest_order.len(), 1);
    }

    #[test]
    fn non_loud_mode_only_echoes_own_disclosures() {
        let mut mana = ManaAttacker::new_non_loud(mac(9));
        assert!(!mana.is_loud());
        // Device 1 disclosed "Mine"; device 2 disclosed "Theirs".
        mana.respond_to_probe(
            SimTime::ZERO,
            &ProbeRequest::direct(mac(1), ssid("Mine")),
            40,
        );
        mana.respond_to_probe(
            SimTime::ZERO,
            &ProbeRequest::direct(mac(2), ssid("Theirs")),
            40,
        );
        // Device 1's broadcast gets only its own SSID back.
        let lures =
            mana.respond_to_probe(SimTime::from_secs(1), &ProbeRequest::broadcast(mac(1)), 40);
        let names: Vec<&str> = lures.iter().map(|l| l.ssid.as_str()).collect();
        assert_eq!(names, ["Mine"]);
        // A never-seen device gets nothing.
        assert!(mana
            .respond_to_probe(SimTime::from_secs(2), &ProbeRequest::broadcast(mac(3)), 40)
            .is_empty());
        // Loud mode would have offered both to everyone.
        let mut loud = ManaAttacker::new(mac(9));
        loud.respond_to_probe(
            SimTime::ZERO,
            &ProbeRequest::direct(mac(1), ssid("Mine")),
            40,
        );
        loud.respond_to_probe(
            SimTime::ZERO,
            &ProbeRequest::direct(mac(2), ssid("Theirs")),
            40,
        );
        assert_eq!(
            loud.respond_to_probe(SimTime::from_secs(1), &ProbeRequest::broadcast(mac(3)), 40)
                .len(),
            2
        );
    }

    #[test]
    fn hits_are_recorded() {
        let mut mana = ManaAttacker::new(mac(9));
        let probe = ProbeRequest::direct(mac(1), ssid("Hit"));
        mana.respond_to_probe(SimTime::ZERO, &probe, 40);
        let lure = Lure::new(ssid("Hit"), LureSource::DirectProbe, LureLane::Database);
        mana.on_hit(SimTime::from_secs(5), mac(2), &lure);
        assert_eq!(mana.database().entry(&ssid("Hit")).unwrap().hits, 1);
    }
}

//! Generation of strings from the regex-pattern subset the workspace uses.
//!
//! Supported syntax: a sequence of atoms, each optionally followed by a
//! `{m,n}` repetition. An atom is `.` (any printable char, including a
//! sprinkling of non-ASCII to exercise lossy conversions), a `[...]` class
//! of literal chars and `a-z` ranges, or a single literal character.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Any,
    Class(Vec<(char, char)>),
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Draws one string matching `pattern`.
///
/// # Panics
///
/// Panics on patterns outside the supported subset — a test-authoring
/// error, surfaced loudly.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = piece.max - piece.min + 1;
        let count = piece.min + rng.range_u64(0, span as u64) as usize;
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

// A few non-ASCII samples so `.` occasionally exercises multi-byte and
// lossy-truncation paths.
const EXOTIC: &[char] = &['é', 'λ', '中', '🦀', '\u{0}', '\t', 'ß'];

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Any => {
            if rng.range_u64(0, 8) == 0 {
                EXOTIC[rng.range_u64(0, EXOTIC.len() as u64) as usize]
            } else {
                char::from(rng.range_u64(0x20, 0x7f) as u8)
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
                .sum();
            let mut pick = rng.range_u64(0, total);
            for (lo, hi) in ranges {
                let span = u64::from(*hi) - u64::from(*lo) + 1;
                if pick < span {
                    return char::from_u32(u32::from(*lo) + pick as u32).unwrap_or('?');
                }
                pick -= span;
            }
            unreachable!("class sampling covers the whole mass")
        }
        Atom::Literal(c) => *c,
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let atom = Atom::Class(parse_class(&chars[i + 1..close], pattern));
                i = close + 1;
                atom
            }
            '\\' => {
                i += 2;
                Atom::Literal(*chars.get(i - 1).unwrap_or(&'\\'))
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(8),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Vec<(char, char)> {
    assert!(!body.is_empty(), "empty class in pattern {pattern:?}");
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            ranges.push((body[i], body[i + 2]));
            i += 3;
        } else if i + 2 == body.len() && body[i + 1] == '-' {
            // Trailing '-' is a literal.
            ranges.push((body[i], body[i]));
            ranges.push(('-', '-'));
            i += 2;
        } else {
            ranges.push((body[i], body[i]));
            i += 1;
        }
    }
    ranges
}

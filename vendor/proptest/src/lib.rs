//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements the small API subset the City-Hunter workspace actually
//! uses: the [`proptest!`] macro, `prop_assert*` / `prop_assume!`,
//! range/tuple/vec/array/string-pattern strategies, `any::<T>()`,
//! `sample::select`, and `ProptestConfig::with_cases`.
//!
//! It deliberately does **not** implement shrinking or persistence; failing
//! cases are reported with their fully rendered inputs instead. Sampling is
//! deterministic per test (seeded from the test name), which keeps the
//! workspace's reproducibility guarantees intact.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface test modules use.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Generates deterministic property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_prop(x in 0u8..32, v in proptest::collection::vec(0u64..10, 0..50)) {
///         prop_assert!(x < 32);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __cases_run: u32 = 0;
                let mut __attempts: u32 = 0;
                while __cases_run < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts < __config.cases.saturating_mul(20).max(1000),
                        "proptest stand-in: too many rejected cases in {}",
                        stringify!($name),
                    );
                    $( let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    let __inputs = {
                        let mut __s = String::new();
                        $(
                            __s.push_str(stringify!($arg));
                            __s.push_str(" = ");
                            __s.push_str(&format!("{:?}", &$arg));
                            __s.push_str("; ");
                        )+
                        __s
                    };
                    let __outcome = (move || ->
                        ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { __cases_run += 1; }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "property {} failed after {} cases: {}\n  inputs: {}",
                                stringify!($name), __cases_run, __msg, __inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {}", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {}: {}",
                        stringify!($cond), format!($($fmt)+))));
        }
    };
}

/// `assert_eq!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {} == {} ({:?} vs {:?})",
                        stringify!($left), stringify!($right), __l, __r)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {} == {} ({:?} vs {:?}): {}",
                        stringify!($left), stringify!($right), __l, __r,
                        format!($($fmt)+))));
        }
    }};
}

/// `assert_ne!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {} != {} (both {:?})",
                        stringify!($left), stringify!($right), __l)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("assertion failed: {} != {} (both {:?}): {}",
                        stringify!($left), stringify!($right), __l,
                        format!($($fmt)+))));
        }
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: ::std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: ::std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread over a broad magnitude range.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.range_u64(0, 0xd800) as u32).unwrap_or('\u{fffd}')
    }
}

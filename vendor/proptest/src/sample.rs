//! Sampling from explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy drawing a uniformly random element of `options`.
///
/// # Panics
///
/// Sampling panics if `options` is empty (a test-authoring error).
pub fn select<T: Clone + ::std::fmt::Debug>(options: Vec<T>) -> Select<T> {
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + ::std::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select from empty list");
        self.options[rng.range_u64(0, self.options.len() as u64) as usize].clone()
    }
}

//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification accepted by [`vec`]: a fixed size or a
/// half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<::std::ops::Range<usize>> for SizeRange {
    fn from(r: ::std::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end.max(r.start + 1),
        }
    }
}

impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: r.end().saturating_add(1),
        }
    }
}

/// Strategy producing a `Vec` of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_u64(self.size.min as u64, self.size.max as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

//! Deterministic case runner state: RNG, config, and failure signalling.

/// How many cases each property runs (and not much else — the stand-in has
/// no shrinking, forking, or persistence knobs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// SplitMix64-based generator: tiny, fast, and deterministic per test name,
/// so a failing property reproduces identically on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from the property's name.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: hash ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi)`. The modulo bias is irrelevant for the
    /// small ranges test strategies draw from.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform value in `[lo, hi)` for signed bounds.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }
}

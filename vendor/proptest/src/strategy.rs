//! The [`Strategy`] trait and the primitive strategies (ranges, tuples,
//! constants, string patterns).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic sampler.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! unsigned_range_strategies {
    ($($ty:ty),+) => {
        $(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.range_u64(u64::from(self.start), u64::from(self.end)) as $ty
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.range_u64(
                        u64::from(*self.start()),
                        u64::from(*self.end()).saturating_add(1),
                    ) as $ty
                }
            }

            impl Strategy for ::std::ops::RangeFrom<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.range_u64(
                        u64::from(self.start),
                        u64::from(<$ty>::MAX).saturating_add(1),
                    ) as $ty
                }
            }
        )+
    };
}

unsigned_range_strategies!(u8, u16, u32);

impl Strategy for ::std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.range_u64(self.start, self.end)
    }
}

impl Strategy for ::std::ops::Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.range_u64(self.start as u64, self.end as u64) as usize
    }
}

impl Strategy for ::std::ops::Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        rng.range_i64(i64::from(self.start), i64::from(self.end)) as i32
    }
}

impl Strategy for ::std::ops::Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        rng.range_i64(self.start, self.end)
    }
}

impl Strategy for ::std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for ::std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String patterns (`"[a-z]{1,6}"`) act as strategies generating matching
/// strings; see [`crate::string`] for the supported pattern subset.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident / $idx:tt),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategies! {
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

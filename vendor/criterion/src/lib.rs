//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the small API subset the `ch-bench` harness uses:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `Criterion::benchmark_group`, `Bencher::iter`, and `black_box`.
//!
//! Measurement is intentionally simple — a fixed warm-up followed by a
//! calibrated timed loop reporting mean ns/iter — because the workspace
//! uses benches for coarse regression spotting, not statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&id.into());
        self
    }

    /// Opens a named group; ids inside are prefixed with the group name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as a benchmark named `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group (a no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measures `routine`: short warm-up, then enough iterations to fill a
    /// fixed measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const WARMUP: Duration = Duration::from_millis(50);
        const WINDOW: Duration = Duration::from_millis(200);

        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }

        // Aim the timed loop at the measurement window, bounded to keep
        // pathological cases from running forever.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let target = (WINDOW.as_nanos() / per_iter.max(1)).clamp(1, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), target));
    }

    fn report(&self, id: &str) {
        match self.measured {
            Some((elapsed, iters)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench {id:<48} {ns:>14.1} ns/iter ({iters} iters)");
            }
            None => println!("bench {id:<48} (no measurement)"),
        }
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
